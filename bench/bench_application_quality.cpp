// Closing the full-stack loop: mapping quality -> application quality.
//
// The paper's motivation for better compilation is "achieving higher
// algorithm success rates". This bench makes that concrete at the
// application layer: the same QAOA-MaxCut instance is mapped with the
// hardware-agnostic baseline and with the profile-recommended strategy,
// executed under depolarizing noise, and scored by what the user actually
// cares about — the approximation ratio of the sampled cuts.
#include <iostream>

#include "common.h"
#include "graph/generators.h"
#include "mapper/recommend.h"
#include "report/table.h"
#include "sim/statevector.h"
#include "workloads/algorithms.h"

using namespace qfs;

namespace {

/// Mean cut value of bitstrings sampled from running `mapped` under
/// depolarizing noise (Pauli injection per gate, like sim::run_noisy but
/// keeping the measurement samples). Virtual bit v is read from physical
/// qubit final_layout[v].
double noisy_mean_cut(const circuit::Circuit& mapped,
                      const std::vector<int>& final_layout,
                      const graph::Graph& problem,
                      const device::ErrorModel& em, int shots,
                      qfs::Rng& rng) {
  double total = 0.0;
  for (int shot = 0; shot < shots; ++shot) {
    sim::StateVector sv(mapped.num_qubits());
    for (const auto& g : mapped.gates()) {
      if (!circuit::is_unitary(g.kind)) continue;
      sv.apply_gate(g);
      if (rng.bernoulli(1.0 - em.gate_fidelity(g))) {
        // Uniform non-identity Pauli on a random operand.
        int q = g.qubits[rng.uniform_index(g.qubits.size())];
        static const circuit::GateKind paulis[3] = {
            circuit::GateKind::kX, circuit::GateKind::kY,
            circuit::GateKind::kZ};
        sv.apply_gate(circuit::make_gate(paulis[rng.uniform_int(0, 2)], {q}));
      }
    }
    std::size_t outcome = sv.sample(rng);
    std::uint64_t assignment = 0;
    for (int v = 0; v < problem.num_nodes(); ++v) {
      if ((outcome >> final_layout[static_cast<std::size_t>(v)]) & 1) {
        assignment |= std::uint64_t{1} << v;
      }
    }
    total += workloads::maxcut_value(problem, assignment);
  }
  return total / shots;
}

}  // namespace

int main() {
  std::cout << "=== Application quality: QAOA-MaxCut approximation ratio vs "
               "mapping strategy ===\n";
  std::cout << "6-node ring MaxCut, QAOA p=2, surface-7 chip, depolarizing "
               "noise, 400 shots\n\n";

  graph::Graph problem = graph::cycle_graph(6);
  double optimum = workloads::maxcut_optimum(problem);

  // Pick decent QAOA angles by a small noiseless scan (the application
  // layer's classical outer loop).
  qfs::Rng angle_rng(2022);
  circuit::Circuit best_qaoa;
  double best_ideal_cut = -1.0;
  for (int trial = 0; trial < 24; ++trial) {
    circuit::Circuit candidate = workloads::qaoa_maxcut(problem, 2, angle_rng);
    circuit::Circuit unitary(candidate.num_qubits());
    for (const auto& g : candidate.gates()) {
      if (g.kind != circuit::GateKind::kMeasure) unitary.add(g);
    }
    sim::StateVector sv(6);
    sv.apply_circuit(unitary);
    double expect = 0.0;
    for (std::size_t a = 0; a < sv.dim(); ++a) {
      expect += sv.probability(a) * workloads::maxcut_value(problem, a);
    }
    if (expect > best_ideal_cut) {
      best_ideal_cut = expect;
      best_qaoa = unitary;
    }
  }
  std::cout << "optimum cut = " << optimum << ", best ideal QAOA expectation "
            << bench::fmt(best_ideal_cut, 2) << " (ratio "
            << bench::fmt(best_ideal_cut / optimum, 3) << ")\n\n";

  device::Device chip = device::surface7_device();
  report::TextTable t({"mapping", "gates", "mean sampled cut",
                       "approximation ratio"});
  double baseline_ratio = 0.0, tuned_ratio = 0.0;
  for (const std::string strategy : {"trivial", "recommended"}) {
    mapper::MappingOptions opts;
    if (strategy == "recommended") {
      opts = mapper::recommend_mapping(profile::profile_circuit(best_qaoa))
                 .options;
    }
    qfs::Rng map_rng(7);
    mapper::MappingResult r = mapper::map_circuit(best_qaoa, chip, opts, map_rng);
    qfs::Rng shot_rng(42);
    double mean_cut = noisy_mean_cut(r.mapped, r.final_layout, problem,
                                     chip.error_model(), 400, shot_rng);
    double ratio = mean_cut / optimum;
    if (strategy == "trivial") {
      baseline_ratio = ratio;
    } else {
      tuned_ratio = ratio;
    }
    t.add_row({strategy + " (" + opts.placer + "+" + opts.router + ")",
               std::to_string(r.gates_after), bench::fmt(mean_cut, 2),
               bench::fmt(ratio, 3)});
  }
  // Context rows: ideal execution and random guessing.
  t.add_row({"ideal (noiseless)", "-", bench::fmt(best_ideal_cut, 2),
             bench::fmt(best_ideal_cut / optimum, 3)});
  t.add_row({"random guessing", "-", bench::fmt(optimum / 2.0, 2), "0.500"});
  std::cout << t.to_string() << "\n";

  std::cout << "better mapping -> better application outcome: "
            << (tuned_ratio > baseline_ratio ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "noise keeps both below the ideal ratio: "
            << (tuned_ratio <= best_ideal_cut / optimum + 0.02 ? "HOLDS"
                                                               : "VIOLATED")
            << "\n";
  return 0;
}
