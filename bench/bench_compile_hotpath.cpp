// Compile hot-path harness: times each pipeline phase (decompose, place,
// route, schedule, full pipeline, cache store/hit) per circuit class on
// surface-97 and appends machine-readable rows to BENCH_compile.json, the
// perf trajectory the hot-path work is pinned against (DESIGN.md §13).
//
// Rows are append-only: each invocation adds one row per (class, phase)
// under --label, and every new row that has a predecessor with the same
// (class, phase) but a *different* label records a speedup_vs delta against
// it — the before/after evidence for an optimization lands in the file
// itself. Each row also carries a digest of the serialized MappingResult
// (pipeline phase) or routed circuit (routing phases), so cross-label
// byte-identity of compiler output is checkable straight from the JSON.
//
//   bench_compile_hotpath --label NAME [--out FILE] [--repeat N] [--smoke]
//                         [--validate] [--floor-route-kgps X]
//
//   --label NAME            row label (e.g. "seed-ir", "flat-ir"); required
//   --out FILE              JSON file to append to (default BENCH_compile.json)
//   --repeat N              timed repetitions per phase; the median is
//                           recorded (default 3)
//   --smoke                 small shapes + repeat 1 (CI perf-smoke job)
//   --fresh                 start a new file instead of appending (ctest)
//   --validate              re-parse the written file and check the schema
//   --floor-route-kgps X    fail (exit 1) unless lookahead routing sustains
//                           at least X kilogates/s on the densest random
//                           class — the ctest regression floor for the
//                           routing inner loop (0 disables; default 0)
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cache/artifact.h"
#include "cache/cache.h"
#include "cache/fingerprint.h"
#include "common.h"
#include "compiler/decompose.h"
#include "compiler/schedule.h"
#include "device/device.h"
#include "mapper/pipeline.h"
#include "mapper/placement.h"
#include "mapper/routing.h"
#include "qasm/writer.h"
#include "report/table.h"
#include "stats/descriptive.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/timer.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

using namespace qfs;

namespace {

constexpr int kSchemaVersion = 1;

struct Options {
  std::string label;
  std::string out = "BENCH_compile.json";
  int repeat = 3;
  bool smoke = false;
  bool fresh = false;
  bool validate = false;
  double floor_route_kgps = 0.0;
};

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_compile_hotpath: " << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--label") {
      opts.label = value("--label");
    } else if (arg == "--out") {
      opts.out = value("--out");
    } else if (arg == "--repeat") {
      if (!qfs::parse_int(value("--repeat"), opts.repeat) || opts.repeat < 1) {
        std::cerr << "bench_compile_hotpath: bad --repeat\n";
        std::exit(1);
      }
    } else if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--fresh") {
      opts.fresh = true;
    } else if (arg == "--validate") {
      opts.validate = true;
    } else if (arg == "--floor-route-kgps") {
      opts.floor_route_kgps = std::atof(value("--floor-route-kgps").c_str());
    } else {
      std::cerr << "bench_compile_hotpath: unknown flag " << arg << "\n";
      std::exit(1);
    }
  }
  if (opts.label.empty()) {
    std::cerr << "bench_compile_hotpath: --label is required\n";
    std::exit(1);
  }
  if (opts.smoke) opts.repeat = 1;
  return opts;
}

/// One benchmarked circuit class: a deterministic generator (fixed seeds
/// only) so every invocation times identical work and cross-label digests
/// are comparable.
struct CircuitClass {
  std::string name;
  circuit::Circuit circuit;
  /// The densest random class carries the routing throughput floor.
  bool floor_carrier = false;
};

std::vector<CircuitClass> make_classes(bool smoke) {
  const int scale = smoke ? 1 : 4;
  std::vector<CircuitClass> classes;
  classes.push_back({"ghz48", workloads::ghz(48), false});
  classes.push_back({"qft20", workloads::qft(20, true), false});
  classes.push_back(
      {"bv40", workloads::bernstein_vazirani(40, 0x5a5a5a5a5aULL), false});
  {
    qfs::Rng rng(7);
    classes.push_back(
        {"qv16", workloads::quantum_volume(16, smoke ? 4 : 8, rng), false});
  }
  {
    qfs::Rng rng(11);
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 40;
    spec.num_gates = 750 * scale;
    spec.two_qubit_fraction = 0.5;
    classes.push_back(
        {"random_dense", workloads::random_circuit(spec, rng), true});
  }
  {
    qfs::Rng rng(13);
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 40;
    spec.num_gates = 750 * scale;
    spec.two_qubit_fraction = 0.2;
    classes.push_back(
        {"random_sparse", workloads::random_circuit(spec, rng), false});
  }
  return classes;
}

/// Median wall-clock over `repeat` runs of `fn` (nearest-rank p50, the
/// shared percentile implementation — satellite S1's single source of
/// truth for rank semantics).
template <typename Fn>
double median_ms(int repeat, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    qfs::StopWatch watch;
    fn();
    samples.push_back(watch.elapsed_ms());
  }
  return stats::percentile_nearest_rank(std::move(samples), 0.5);
}

struct Row {
  std::string phase;
  double ms = 0.0;
  int gates = 0;
  /// Throughput in kilogates/second (gates / ms); 0 when not meaningful.
  double kgps = 0.0;
  /// Digest of the phase's output bytes (empty when the phase has no
  /// deterministic artifact, e.g. cache timing).
  std::string digest;
};

std::string digest_of(const std::string& bytes) {
  return qfs::hash128(bytes).hex();
}

/// Run every phase for one class and return its rows.
std::vector<Row> bench_class(const CircuitClass& cls,
                             const device::Device& device, int repeat,
                             const std::string& cache_dir) {
  std::vector<Row> rows;
  auto add = [&rows](const std::string& phase, double ms, int gates,
                     std::string digest = std::string()) {
    Row row;
    row.phase = phase;
    row.ms = ms;
    row.gates = gates;
    row.kgps = ms > 0.0 ? static_cast<double>(gates) / ms : 0.0;
    row.digest = std::move(digest);
    rows.push_back(std::move(row));
  };

  // Phase: decompose to the device's primitive set. Everything downstream
  // times the decomposed circuit, as the pipeline does.
  circuit::Circuit decomposed;
  add("decompose", median_ms(repeat,
                             [&] {
                               decomposed = compiler::decompose_to_gateset(
                                   cls.circuit, device.gateset());
                             }),
      static_cast<int>(cls.circuit.size()));
  const int gates = static_cast<int>(decomposed.size());

  // Phase: placement (degree-match: the distance-table-heavy placer that
  // is cheap enough to time per class; annealing is covered by
  // bench_perf_microbench).
  mapper::Layout placement = mapper::Layout::identity(device.num_qubits());
  add("place_degree", median_ms(repeat,
                                [&] {
                                  qfs::Rng rng(1);
                                  placement = mapper::DegreeMatchPlacer().place(
                                      decomposed, device, rng);
                                }),
      gates);

  // Phases: routing from the identity layout (fixed start so the digest is
  // label-comparable), trivial and lookahead.
  const mapper::Layout identity = mapper::Layout::identity(device.num_qubits());
  mapper::RoutingResult routed;
  add("route_trivial", median_ms(repeat,
                                 [&] {
                                   qfs::Rng rng(1);
                                   routed = mapper::TrivialRouter().route(
                                       decomposed, device, identity, rng);
                                 }),
      gates, digest_of(qasm::to_qasm(routed.mapped)));
  add("route_lookahead", median_ms(repeat,
                                   [&] {
                                     qfs::Rng rng(1);
                                     routed = mapper::LookaheadRouter().route(
                                         decomposed, device, identity, rng);
                                   }),
      gates, digest_of(qasm::to_qasm(routed.mapped)));

  // Phase: ASAP scheduling of the routed circuit (SWAPs expanded to
  // primitives first, as the pipeline does before scheduling).
  circuit::Circuit physical = compiler::expand_swaps(routed.mapped);
  add("schedule_asap", median_ms(repeat,
                                 [&] {
                                   auto sched =
                                       compiler::asap_schedule(physical, device);
                                   (void)sched;
                                 }),
      static_cast<int>(physical.size()));

  // Phase: the full mapping pipeline under the heavy configuration
  // (degree placer + lookahead router), whose MappingResult digest is the
  // byte-identity witness for the whole compile.
  mapper::MappingOptions mopts;
  mopts.placer = "degree-match";
  mopts.router = "lookahead";
  mapper::MappingResult mapping;
  add("pipeline", median_ms(repeat,
                            [&] {
                              qfs::Rng rng(1);
                              mapping = mapper::map_circuit(cls.circuit, device,
                                                            mopts, rng);
                            }),
      gates, digest_of(cache::serialize_mapping_result(mapping)));

  // Phases: cache store + disk hit for that artifact. A fresh cache
  // instance per lookup run keeps the memory tier cold, so the hit path
  // timed here is deserialization + content-addressed disk read — the
  // cross-process warm-compile scenario.
  const cache::Fingerprint key = cache::compile_fingerprint(
      qasm::to_qasm(cls.circuit), device, mopts, /*seed=*/1);
  add("cache_store", median_ms(repeat,
                               [&] {
                                 cache::CompileCache store_cache(
                                     cache::CacheConfig{cache_dir});
                                 cache::store_mapping(store_cache, key,
                                                      mapping);
                               }),
      mapping.gates_after);
  add("cache_hit", median_ms(repeat,
                             [&] {
                               cache::CompileCache hit_cache(
                                   cache::CacheConfig{cache_dir});
                               auto loaded = cache::load_mapping(hit_cache, key);
                               QFS_ASSERT_MSG(loaded.has_value(),
                                              "cache hit phase missed");
                             }),
      mapping.gates_after);
  return rows;
}

// --- BENCH_compile.json append/delta machinery ----------------------------

JsonValue load_or_init(const std::string& path, bool fresh) {
  std::ifstream in(path);
  if (in && !fresh) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = JsonValue::parse(buffer.str());
    if (parsed.is_ok() && parsed.value().is_object() &&
        parsed.value().find("rows") != nullptr) {
      return std::move(parsed.value());
    }
    std::cerr << "bench_compile_hotpath: " << path
              << " exists but is not a valid bench file; refusing to "
                 "overwrite it\n";
    std::exit(1);
  }
  JsonValue root = JsonValue::object();
  root.set("bench", JsonValue::string("compile"));
  root.set("schema", JsonValue::integer(kSchemaVersion));
  root.set("device", JsonValue::string("surface97"));
  root.set("rows", JsonValue::array());
  return root;
}

/// The most recent existing row with the same (class, phase) and a
/// different label — the "before" a new row's delta is computed against.
const JsonValue* find_predecessor(const JsonValue& rows,
                                  const std::string& cls,
                                  const std::string& phase,
                                  const std::string& label) {
  const JsonValue* best = nullptr;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonValue& row = rows.at(i);
    const JsonValue* row_class = row.find("class");
    const JsonValue* row_phase = row.find("phase");
    const JsonValue* row_label = row.find("label");
    if (row_class == nullptr || row_phase == nullptr || row_label == nullptr)
      continue;
    if (row_class->as_string() == cls && row_phase->as_string() == phase &&
        row_label->as_string() != label) {
      best = &row;  // keep scanning: later rows are more recent
    }
  }
  return best;
}

bool validate_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "validate: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::parse(buffer.str());
  if (!parsed.is_ok()) {
    std::cerr << "validate: " << parsed.status().message() << "\n";
    return false;
  }
  const JsonValue& root = parsed.value();
  const JsonValue* schema = root.find("schema");
  const JsonValue* bench = root.find("bench");
  const JsonValue* rows = root.find("rows");
  if (schema == nullptr || !schema->is_integer() ||
      schema->as_integer() != kSchemaVersion || bench == nullptr ||
      bench->as_string() != "compile" || rows == nullptr ||
      !rows->is_array() || rows->size() == 0) {
    std::cerr << "validate: bad top-level schema\n";
    return false;
  }
  for (std::size_t i = 0; i < rows->size(); ++i) {
    const JsonValue& row = rows->at(i);
    for (const char* key : {"label", "class", "phase"}) {
      const JsonValue* field = row.find(key);
      if (field == nullptr || !field->is_string() ||
          field->as_string().empty()) {
        std::cerr << "validate: row " << i << " missing " << key << "\n";
        return false;
      }
    }
    const JsonValue* ms = row.find("ms");
    const JsonValue* gates = row.find("gates");
    if (ms == nullptr || !ms->is_number() || ms->as_number() < 0.0 ||
        gates == nullptr || !gates->is_integer() || gates->as_integer() < 0) {
      std::cerr << "validate: row " << i << " has bad ms/gates\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);
  std::cout << "=== Compile hot-path phase timings (label: " << opts.label
            << (opts.smoke ? ", smoke" : "") << ") ===\n\n";

  device::Device device = device::surface97_device();
  std::string cache_dir =
      (std::filesystem::temp_directory_path() / "qfs_bench_compile_hotpath")
          .string();
  std::filesystem::remove_all(cache_dir);

  JsonValue root = load_or_init(opts.out, opts.fresh);
  JsonValue rows_json = *root.find("rows");

  report::TextTable table(
      {"class", "phase", "ms (median)", "kgates/s", "vs prior"});
  bool floor_ok = true;
  double floor_kgps_seen = -1.0;

  for (const auto& cls : make_classes(opts.smoke)) {
    std::cerr << cls.name << " ";
    std::vector<Row> rows = bench_class(cls, device, opts.repeat, cache_dir);
    for (const Row& row : rows) {
      JsonValue entry = JsonValue::object();
      entry.set("label", JsonValue::string(opts.label));
      entry.set("class", JsonValue::string(cls.name));
      entry.set("phase", JsonValue::string(row.phase));
      entry.set("ms", JsonValue::number(row.ms));
      entry.set("reps", JsonValue::integer(opts.repeat));
      entry.set("gates", JsonValue::integer(row.gates));
      entry.set("smoke", JsonValue::boolean(opts.smoke));
      if (row.kgps > 0.0) entry.set("kgps", JsonValue::number(row.kgps));
      if (!row.digest.empty())
        entry.set("digest", JsonValue::string(row.digest));

      std::string delta_text = "-";
      const JsonValue* prior =
          find_predecessor(rows_json, cls.name, row.phase, opts.label);
      if (prior != nullptr) {
        const JsonValue* prior_ms = prior->find("ms");
        const JsonValue* prior_label = prior->find("label");
        if (prior_ms != nullptr && prior_ms->as_number() > 0.0 && row.ms > 0.0) {
          const double speedup = prior_ms->as_number() / row.ms;
          JsonValue delta = JsonValue::object();
          delta.set("label", *prior_label);
          delta.set("ms", *prior_ms);
          delta.set("speedup", JsonValue::number(speedup));
          entry.set("speedup_vs", std::move(delta));
          delta_text = bench::fmt(speedup, 2) + "x vs " +
                       prior_label->as_string();
        }
      }

      if (cls.floor_carrier && row.phase == "route_lookahead")
        floor_kgps_seen = row.kgps;
      table.add_row({cls.name, row.phase, bench::fmt(row.ms, 3),
                     row.kgps > 0.0 ? bench::fmt(row.kgps, 1) : "-",
                     delta_text});
      rows_json.push_back(std::move(entry));
    }
  }
  std::cerr << "\n";
  std::cout << table.to_string() << "\n";

  root.set("rows", std::move(rows_json));
  std::ofstream out(opts.out, std::ios::trunc);
  if (!out) {
    std::cerr << "bench_compile_hotpath: cannot write " << opts.out << "\n";
    return 1;
  }
  out << root.to_pretty_string() << "\n";
  out.close();
  std::cout << "appended rows to " << opts.out << "\n";

  std::filesystem::remove_all(cache_dir);

  bool ok = true;
  if (opts.validate) {
    const bool valid = validate_bench_file(opts.out);
    std::cout << (valid ? "PASS" : "FAIL") << ": " << opts.out
              << " matches the bench schema\n";
    ok = ok && valid;
  }
  if (opts.floor_route_kgps > 0.0) {
    floor_ok = floor_kgps_seen >= opts.floor_route_kgps;
    std::cout << (floor_ok ? "PASS" : "FAIL")
              << ": lookahead routing throughput "
              << bench::fmt(floor_kgps_seen, 1) << " kgates/s (floor "
              << bench::fmt(opts.floor_route_kgps, 1) << ")\n";
    ok = ok && floor_ok;
  }
  return ok ? 0 : 1;
}
