// The paper's punchline, automated: algorithm-driven strategy selection.
//
// For every suite circuit, recommend_mapping() reads the interaction-graph
// profile and picks a strategy; this bench compares the recommended
// configuration against the hardware-agnostic trivial baseline, with
// bootstrap confidence intervals on the mean overhead.
#include <iostream>

#include "common.h"
#include "mapper/recommend.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace qfs;

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  std::cout << "=== Algorithm-driven mapping via profile-based "
               "recommendation (surface-97) ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface97");
  qfs::Rng rng(2022);
  workloads::SuiteOptions suite_opts;
  suite_opts.random_count = 30;
  suite_opts.real_count = 40;
  suite_opts.reversible_count = 20;
  suite_opts.max_gates = 1200;
  suite_opts.max_qubits = 40;
  auto suite = workloads::make_suite(suite_opts, rng);

  std::vector<double> trivial_ov, recommended_ov;
  std::map<std::string, int> placer_counts;
  int wins = 0, ties = 0;
  std::cerr << "mapping " << suite.size() << " circuits ";
  int done = 0;
  for (const auto& b : suite) {
    profile::CircuitProfile p = profile::profile_circuit(b.circuit);
    mapper::MappingRecommendation rec = mapper::recommend_mapping(p);
    ++placer_counts[rec.options.placer];

    qfs::Rng r1(7), r2(7);
    double baseline =
        mapper::map_circuit(b.circuit, dev, r1).gate_overhead_pct;
    double tuned =
        mapper::map_circuit(b.circuit, dev, rec.options, r2).gate_overhead_pct;
    trivial_ov.push_back(baseline);
    recommended_ov.push_back(tuned);
    if (tuned < baseline) ++wins;
    if (tuned == baseline) ++ties;
    if (++done % 20 == 0) std::cerr << '.' << std::flush;
  }
  std::cerr << '\n';

  qfs::Rng boot(99);
  auto ci_triv = stats::bootstrap_mean_ci(trivial_ov, boot);
  auto ci_rec = stats::bootstrap_mean_ci(recommended_ov, boot);

  report::TextTable t({"strategy", "mean overhead %", "95% CI"});
  t.add_row({"trivial baseline", bench::fmt(ci_triv.point, 1),
             "[" + bench::fmt(ci_triv.lower, 1) + ", " +
                 bench::fmt(ci_triv.upper, 1) + "]"});
  t.add_row({"profile-recommended", bench::fmt(ci_rec.point, 1),
             "[" + bench::fmt(ci_rec.lower, 1) + ", " +
                 bench::fmt(ci_rec.upper, 1) + "]"});
  std::cout << t.to_string() << "\n";

  std::cout << "Strategy mix chosen by the recommender: ";
  for (const auto& [placer, count] : placer_counts) {
    std::cout << placer << "=" << count << " ";
  }
  std::cout << "\nRecommended beats baseline on " << wins << "/" << suite.size()
            << " circuits (" << ties << " ties)\n";

  bool separated = ci_rec.upper < ci_triv.lower;
  std::cout << "Mean improvement is outside the baseline's 95% CI: "
            << (separated ? "HOLDS" : "VIOLATED")
            << "\nAlgorithm-driven + hardware-aware beats hardware-agnostic "
               "mapping — the paper's thesis, quantified.\n";
  return 0;
}
