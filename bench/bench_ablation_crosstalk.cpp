// Ablation: crosstalk-aware scheduling.
//
// The paper cites software crosstalk mitigation as a co-design example
// (low-level coupling information consumed by the scheduler). This bench
// quantifies the trade: serialising two-qubit gates on adjacent coupling
// edges removes all crosstalk events at the cost of a longer schedule;
// whether fidelity improves depends on the crosstalk strength.
#include <cmath>
#include <iostream>

#include "common.h"
#include "compiler/schedule.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace qfs;

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  std::cout << "=== Ablation: crosstalk-aware scheduling (surface-17) ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface17");
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.suite.random_count = 20;
  config.suite.real_count = 20;
  config.suite.reversible_count = 10;
  config.suite.max_qubits = 17;
  config.suite.max_gates = 600;
  std::cerr << "mapping 50 circuits ";
  auto rows = bench::run_suite(dev, config);

  const double kCrosstalkFactor = 0.995;  // fidelity cost per adjacent pair

  std::vector<double> base_pairs, base_makespan, base_logf;
  std::vector<double> safe_pairs, safe_makespan, safe_logf;
  for (const auto& row : rows) {
    const auto& mapped = row.mapping.mapped;
    compiler::Schedule plain = compiler::asap_schedule(mapped, dev);
    compiler::ScheduleOptions opts;
    opts.avoid_crosstalk = true;
    compiler::Schedule safe = compiler::asap_schedule(mapped, dev, opts);

    base_pairs.push_back(compiler::count_crosstalk_pairs(mapped, dev, plain));
    safe_pairs.push_back(compiler::count_crosstalk_pairs(mapped, dev, safe));
    base_makespan.push_back(plain.makespan_cycles);
    safe_makespan.push_back(safe.makespan_cycles);
    base_logf.push_back(compiler::estimate_scheduled_log_fidelity(
        mapped, dev, plain, kCrosstalkFactor));
    safe_logf.push_back(compiler::estimate_scheduled_log_fidelity(
        mapped, dev, safe, kCrosstalkFactor));
  }

  report::TextTable t({"scheduler", "mean crosstalk pairs", "mean makespan",
                       "mean log fidelity (factor 0.995)"});
  t.add_row({"baseline ASAP", bench::fmt(stats::mean(base_pairs), 1),
             bench::fmt(stats::mean(base_makespan), 1),
             bench::fmt(stats::mean(base_logf), 3)});
  t.add_row({"crosstalk-aware", bench::fmt(stats::mean(safe_pairs), 1),
             bench::fmt(stats::mean(safe_makespan), 1),
             bench::fmt(stats::mean(safe_logf), 3)});
  std::cout << t.to_string() << "\n";

  bool zero = stats::mean(safe_pairs) == 0.0;
  bool slower = stats::mean(safe_makespan) >= stats::mean(base_makespan);
  bool better_f = stats::mean(safe_logf) > stats::mean(base_logf);
  std::cout << "crosstalk events eliminated:        "
            << (zero ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "schedule length increases (trade):  "
            << (slower ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "scheduled fidelity improves:        "
            << (better_f ? "HOLDS" : "VIOLATED") << "\n";
  return 0;
}
