// Fig. 3 reproduction: impact of the circuit mapping process on the
// extended ~100-qubit Surface-17 (our Surface-97) with the trivial mapper.
//
//  (a) gate number vs circuit fidelity (circuits with < 400 gates),
//  (b) two-qubit-gate % vs gate overhead %,
//  (c) gate overhead % vs decrease in fidelity % (circuits < 400 gates).
//
// Random circuits are drawn as 's' (squares in the paper), real algorithms
// as 'o' (circles), reversible as 'r'.
#include <iostream>

#include "common.h"
#include "report/histogram.h"
#include "report/scatter.h"
#include "support/csv.h"
#include "report/table.h"
#include "stats/correlation.h"
#include "stats/regression.h"

using namespace qfs;

namespace {

struct Panel {
  report::ScatterSeries random{"random circuits", 's', {}, {}};
  report::ScatterSeries real{"real algorithms", 'o', {}, {}};
  report::ScatterSeries reversible{"reversible circuits", 'r', {}, {}};

  void add(workloads::Family family, double x, double y) {
    report::ScatterSeries* s = nullptr;
    switch (family) {
      case workloads::Family::kRandom: s = &random; break;
      case workloads::Family::kReal: s = &real; break;
      case workloads::Family::kReversible: s = &reversible; break;
    }
    s->xs.push_back(x);
    s->ys.push_back(y);
  }

  std::vector<report::ScatterSeries> series() const {
    return {random, real, reversible};
  }

  std::vector<double> all_x() const {
    std::vector<double> xs = random.xs;
    xs.insert(xs.end(), real.xs.begin(), real.xs.end());
    xs.insert(xs.end(), reversible.xs.begin(), reversible.xs.end());
    return xs;
  }
  std::vector<double> all_y() const {
    std::vector<double> ys = random.ys;
    ys.insert(ys.end(), real.ys.begin(), real.ys.end());
    ys.insert(ys.end(), reversible.ys.begin(), reversible.ys.end());
    return ys;
  }
};

double mean_of(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  std::cout << "=== Fig. 3: impact of the circuit mapping process ===\n";
  std::cout << "device: surface-97 (extended 100-qubit Surface-17), "
               "trivial placer + trivial router\n\n";

  device::Device dev = bench::resolve_device(flags, "surface97");
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  // The paper uses the full qbench range but plots (a)/(c) only below 400
  // gates; keep the sweep broad but bounded for bench runtime.
  config.suite.max_gates = 5000;
  std::cerr << "mapping 200 circuits ";
  auto rows = bench::run_suite(dev, config);

  Panel fig3a, fig3b, fig3c;
  for (const auto& row : rows) {
    const auto& m = row.mapping;
    if (m.gates_before < 400) {
      fig3a.add(row.family, m.gates_after, m.fidelity_after);
      fig3c.add(row.family, m.gate_overhead_pct, m.fidelity_decrease_pct);
    }
    fig3b.add(row.family, 100.0 * row.profile.two_qubit_fraction,
              m.gate_overhead_pct);
  }

  report::ScatterOptions a_opts;
  a_opts.title = "(a) gate number vs circuit fidelity (<400 gates)";
  a_opts.x_label = "number of gates (after mapping)";
  a_opts.y_label = "estimated circuit fidelity";
  std::cout << render_scatter(fig3a.series(), a_opts) << "\n";

  auto fit = stats::exponential_fit(fig3a.all_x(), fig3a.all_y());
  std::cout << "exponential fit: fidelity ~= " << bench::fmt(std::exp(fit.intercept), 3)
            << " * exp(" << bench::fmt(fit.slope, 5) << " * gates), r2(log) = "
            << bench::fmt(fit.r2, 3) << "\n\n";

  report::ScatterOptions b_opts;
  b_opts.title = "(b) two-qubit gate % vs gate overhead %";
  b_opts.x_label = "two-qubit gate share (%)";
  b_opts.y_label = "gate overhead (%)";
  std::cout << render_scatter(fig3b.series(), b_opts) << "\n";
  std::cout << "Pearson(2q%, overhead%) = "
            << bench::fmt(stats::pearson(fig3b.all_x(), fig3b.all_y()), 3)
            << "  (paper: positive relation)\n\n";

  report::ScatterOptions c_opts;
  c_opts.title = "(c) gate overhead % vs fidelity decrease % (<400 gates)";
  c_opts.x_label = "gate overhead (%)";
  c_opts.y_label = "fidelity decrease (%)";
  std::cout << render_scatter(fig3c.series(), c_opts) << "\n";
  std::cout << "Spearman(overhead%, fidelity decrease%) = "
            << bench::fmt(stats::spearman(fig3c.all_x(), fig3c.all_y()), 3)
            << "  (paper: positive relation)\n\n";

  // Family summary: the paper notes overhead/fidelity-decrease are on
  // average higher for synthetic (random) than for real algorithms.
  report::TextTable t({"family", "circuits", "mean overhead %",
                       "mean fidelity decrease % (<400 gates)"});
  auto family_rows = [&rows](workloads::Family f) {
    std::vector<double> ov, fd;
    for (const auto& r : rows) {
      if (r.family != f) continue;
      ov.push_back(r.mapping.gate_overhead_pct);
      if (r.mapping.gates_before < 400) {
        fd.push_back(r.mapping.fidelity_decrease_pct);
      }
    }
    return std::make_pair(ov, fd);
  };
  for (auto f : {workloads::Family::kRandom, workloads::Family::kReal,
                 workloads::Family::kReversible}) {
    auto [ov, fd] = family_rows(f);
    t.add_row({workloads::family_name(f), std::to_string(ov.size()),
               bench::fmt(mean_of(ov), 1), bench::fmt(mean_of(fd), 1)});
  }
  std::cout << t.to_string() << "\n";

  auto [random_ov, random_fd] = family_rows(workloads::Family::kRandom);
  auto [real_ov, real_fd] = family_rows(workloads::Family::kReal);
  bool shape_holds = mean_of(random_ov) > mean_of(real_ov);
  std::cout << "Shape check (random overhead > real overhead on average): "
            << (shape_holds ? "HOLDS" : "VIOLATED") << "\n\n";

  // Distribution view: random circuits pile up at high overhead.
  report::HistogramOptions h;
  h.bins = 8;
  h.lower = 0.0;
  h.upper = 2000.0;
  h.title = "overhead % distribution — random circuits";
  std::cout << render_histogram(random_ov, h) << "\n";
  h.title = "overhead % distribution — real algorithms";
  std::cout << render_histogram(real_ov, h) << "\n";

  // Machine-readable series: the raw rows behind all three panels.
  std::cout << "\n--- CSV (fig3 series) ---\n";
  qfs::CsvWriter csv(std::cout);
  csv.header({"name", "family", "gates_before", "gates_after",
              "two_qubit_pct", "overhead_pct", "fidelity_after",
              "fidelity_decrease_pct"});
  for (const auto& row : rows) {
    csv.row({row.name, workloads::family_name(row.family),
             std::to_string(row.mapping.gates_before),
             std::to_string(row.mapping.gates_after),
             bench::fmt(100.0 * row.profile.two_qubit_fraction, 3),
             bench::fmt(row.mapping.gate_overhead_pct, 3),
             bench::fmt(row.mapping.fidelity_after, 6),
             bench::fmt(row.mapping.fidelity_decrease_pct, 3)});
  }
  return 0;
}
