// Fig. 5 reproduction: gate overhead (%) vs the four reduced
// interaction-graph parameters, for 200 compiled benchmark circuits on the
// extended Surface-17 (surface-97) with the trivial mapper.
//
// Paper observation: circuits with high gate overhead have, on average,
// low edge-weight variation, low average shortest path, and higher maximum
// degree.
#include <iostream>

#include "common.h"
#include "report/scatter.h"
#include "report/table.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "support/csv.h"

using namespace qfs;

namespace {

struct PanelData {
  std::string metric;
  std::vector<double> x_random, y_random;
  std::vector<double> x_real, y_real;

  std::vector<double> all_x() const {
    auto xs = x_random;
    xs.insert(xs.end(), x_real.begin(), x_real.end());
    return xs;
  }
  std::vector<double> all_y() const {
    auto ys = y_random;
    ys.insert(ys.end(), y_real.begin(), y_real.end());
    return ys;
  }
};

void print_panel(const PanelData& p) {
  report::ScatterSeries synthetic{"synthetic (random+reversible)", 's',
                                  p.x_random, p.y_random};
  report::ScatterSeries real{"real algorithms", 'o', p.x_real, p.y_real};
  report::ScatterOptions opts;
  opts.title = "gate overhead (%) vs " + p.metric;
  opts.x_label = p.metric;
  opts.y_label = "gate overhead (%)";
  opts.height = 16;
  std::cout << render_scatter({synthetic, real}, opts);
  std::cout << "Spearman = " << bench::fmt(stats::spearman(p.all_x(), p.all_y()), 3)
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  std::cout << "=== Fig. 5: gate overhead vs interaction-graph parameters "
               "===\n";
  std::cout << "200 benchmarks, surface-97, trivial mapper\n\n";

  device::Device dev = bench::resolve_device(flags, "surface97");
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.suite.max_gates = 3000;
  std::cerr << "mapping 200 circuits ";
  auto rows = bench::run_suite(dev, config);

  PanelData adj{"adjacency-matrix std dev", {}, {}, {}, {}};
  PanelData asp{"avg shortest path", {}, {}, {}, {}};
  PanelData maxd{"max degree", {}, {}, {}, {}};
  PanelData mind{"min degree", {}, {}, {}, {}};

  for (const auto& r : rows) {
    if (r.profile.ig_nodes < 2) continue;
    double overhead = r.mapping.gate_overhead_pct;
    bool real = r.family == workloads::Family::kReal;
    auto put = [real, overhead](PanelData& p, double x) {
      if (real) {
        p.x_real.push_back(x);
        p.y_real.push_back(overhead);
      } else {
        p.x_random.push_back(x);
        p.y_random.push_back(overhead);
      }
    };
    put(adj, r.profile.adj_matrix_stddev);
    put(asp, r.profile.avg_shortest_path);
    put(maxd, r.profile.max_degree);
    put(mind, r.profile.min_degree);
  }

  print_panel(adj);
  print_panel(asp);
  print_panel(maxd);
  print_panel(mind);

  // Quantitative shape check: compare metric averages between the top and
  // bottom overhead quartiles (the paper's "circuits with high gate
  // overhead had on average ..." claim).
  auto all_overhead = adj.all_y();
  double q75 = stats::quantile(all_overhead, 0.75);
  double q25 = stats::quantile(all_overhead, 0.25);

  auto quartile_means = [&](const PanelData& p) {
    double hi_sum = 0, lo_sum = 0;
    int hi_n = 0, lo_n = 0;
    auto xs = p.all_x();
    auto ys = p.all_y();
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (ys[i] >= q75) {
        hi_sum += xs[i];
        ++hi_n;
      } else if (ys[i] <= q25) {
        lo_sum += xs[i];
        ++lo_n;
      }
    }
    return std::make_pair(hi_n ? hi_sum / hi_n : 0.0, lo_n ? lo_sum / lo_n : 0.0);
  };

  report::TextTable t({"metric", "mean @ high overhead", "mean @ low overhead",
                       "paper expects", "shape"});
  bool all_hold = true;
  struct Check {
    const PanelData* p;
    bool high_overhead_should_be_lower;
    const char* expect;
  };
  for (const Check& c :
       {Check{&adj, true, "lower (low weight variation)"},
        Check{&asp, true, "lower (denser graph)"},
        Check{&maxd, false, "higher (hub qubits)"}}) {
    auto [hi, lo] = quartile_means(*c.p);
    bool holds = c.high_overhead_should_be_lower ? (hi < lo) : (hi > lo);
    all_hold = all_hold && holds;
    t.add_row({c.p->metric, bench::fmt(hi, 3), bench::fmt(lo, 3), c.expect,
               holds ? "HOLDS" : "VIOLATED"});
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Fig. 5 qualitative observations reproduced: "
            << (all_hold ? "YES" : "NO") << "\n";

  // Machine-readable series for all four panels.
  std::cout << "\n--- CSV (fig5 series) ---\n";
  qfs::CsvWriter csv(std::cout);
  csv.header({"name", "family", "overhead_pct", "adj_matrix_stddev",
              "avg_shortest_path", "max_degree", "min_degree"});
  for (const auto& r : rows) {
    if (r.profile.ig_nodes < 2) continue;
    csv.row({r.name, workloads::family_name(r.family),
             bench::fmt(r.mapping.gate_overhead_pct, 3),
             bench::fmt(r.profile.adj_matrix_stddev, 4),
             bench::fmt(r.profile.avg_shortest_path, 4),
             std::to_string(r.profile.max_degree),
             std::to_string(r.profile.min_degree)});
  }
  return 0;
}
