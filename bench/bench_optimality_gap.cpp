// Ablation: how far from optimal are the heuristic routers?
//
// On small instances the A* OptimalRouter computes the true minimum SWAP
// count (sequential execution model). This bench measures the optimality
// gap of the trivial and lookahead routers over a set of small circuits —
// the kind of structured design-space measurement the paper's co-design
// methodology calls for.
#include <iostream>

#include "common.h"
#include "mapper/optimal.h"
#include "report/table.h"
#include "stats/descriptive.h"
#include "workloads/random_circuit.h"

using namespace qfs;

int main() {
  std::cout << "=== Ablation: optimality gap of heuristic routers ===\n";
  std::cout << "device: surface-7; 40 random 5-qubit circuits, sequential "
               "routing model\n\n";

  device::Device dev = device::surface7_device();
  qfs::Rng gen(2022);

  std::vector<double> opt_swaps, trivial_swaps, lookahead_swaps;
  int trivial_matches = 0, lookahead_matches = 0;
  const int instances = 40;
  for (int i = 0; i < instances; ++i) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 5;
    spec.num_gates = 14;
    spec.two_qubit_fraction = 0.55;
    circuit::Circuit c = workloads::random_circuit(spec, gen);

    qfs::Rng r1(i), r2(i), r3(i);
    mapper::Layout start = mapper::Layout::identity(7);
    int opt =
        mapper::OptimalRouter().route(c, dev, start, r1).swaps_inserted;
    int tri =
        mapper::TrivialRouter().route(c, dev, start, r2).swaps_inserted;
    int ahead =
        mapper::LookaheadRouter().route(c, dev, start, r3).swaps_inserted;
    opt_swaps.push_back(opt);
    trivial_swaps.push_back(tri);
    lookahead_swaps.push_back(ahead);
    if (tri == opt) ++trivial_matches;
    if (ahead == opt) ++lookahead_matches;
  }

  double opt_mean = stats::mean(opt_swaps);
  report::TextTable t({"router", "mean swaps", "mean gap vs optimal",
                       "instances at optimum"});
  t.add_row({"optimal (A*)", bench::fmt(opt_mean, 2), "0.00",
             std::to_string(instances) + "/" + std::to_string(instances)});
  t.add_row({"trivial", bench::fmt(stats::mean(trivial_swaps), 2),
             bench::fmt(stats::mean(trivial_swaps) - opt_mean, 2),
             std::to_string(trivial_matches) + "/" + std::to_string(instances)});
  t.add_row({"lookahead", bench::fmt(stats::mean(lookahead_swaps), 2),
             bench::fmt(stats::mean(lookahead_swaps) - opt_mean, 2),
             std::to_string(lookahead_matches) + "/" +
                 std::to_string(instances)});
  std::cout << t.to_string() << "\n";

  // Soundness: the trivial router shares the A* sequential execution model,
  // so it can never use fewer swaps. (The lookahead router reorders gates
  // through the dependency DAG and may legitimately beat the *sequential*
  // optimum on some instances.)
  bool sound = true;
  int lookahead_beats_sequential_opt = 0;
  for (std::size_t i = 0; i < opt_swaps.size(); ++i) {
    if (trivial_swaps[i] < opt_swaps[i]) sound = false;
    if (lookahead_swaps[i] < opt_swaps[i]) ++lookahead_beats_sequential_opt;
  }
  std::cout << "Trivial router never beats the sequential optimum "
               "(A* soundness): "
            << (sound ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "Lookahead closes part of the trivial router's gap: "
            << (stats::mean(lookahead_swaps) <= stats::mean(trivial_swaps)
                    ? "HOLDS"
                    : "VIOLATED")
            << "\n";
  std::cout << "Instances where DAG reordering beats the sequential optimum: "
            << lookahead_beats_sequential_opt << "/" << instances
            << "  (gate reordering is itself a routing resource)\n";
  return 0;
}
