// Device-zoo coverage bench: compile the paper suite onto every zoo
// backend (heavy-hex, sycamore grid, trapped-ion, neutral-atom) through the
// registry, verify each artifact with the physical-stage checker, and
// append one machine-readable row per backend to BENCH_device_zoo.json.
// This is the cross-backend counterpart of bench_compile_hotpath: it tracks
// how routing overhead, fidelity loss, and compile time move across
// connectivity regimes, not across code revisions of one device.
//
// Rows are append-only under --label (same idiom as BENCH_compile.json), so
// a mapper change lands its before/after evidence for every connectivity
// regime in the file itself.
//
//   bench_device_zoo --label NAME [--out FILE] [--smoke] [--fresh]
//                    [--validate] [--qasm-dir DIR]
//
//   --label NAME     row label (e.g. "lookahead-v2"); required
//   --out FILE       JSON file to append to (default BENCH_device_zoo.json)
//   --smoke          small suite draw (CI perf-smoke job)
//   --fresh          start a new file instead of appending (ctest)
//   --validate       re-parse the written file and check the schema
//   --qasm-dir DIR   compile the .qasm corpus in DIR (e.g. the QASMBench
//                    fixtures) instead of the generated paper suite
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "backends/registry.h"
#include "common.h"
#include "report/table.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/timer.h"
#include "workloads/suite.h"
#include "workloads/suite_io.h"

using namespace qfs;

namespace {

constexpr int kSchemaVersion = 1;

struct Options {
  std::string label;
  std::string out = "BENCH_device_zoo.json";
  bool smoke = false;
  bool fresh = false;
  bool validate = false;
  std::string qasm_dir;
};

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_device_zoo: " << flag << " needs a value\n";
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--label") {
      opts.label = value("--label");
    } else if (arg == "--out") {
      opts.out = value("--out");
    } else if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--fresh") {
      opts.fresh = true;
    } else if (arg == "--validate") {
      opts.validate = true;
    } else if (arg == "--qasm-dir") {
      opts.qasm_dir = value("--qasm-dir");
    } else {
      std::cerr << "bench_device_zoo: unknown flag " << arg << "\n";
      std::exit(1);
    }
  }
  if (opts.label.empty()) {
    std::cerr << "bench_device_zoo: --label is required\n";
    std::exit(1);
  }
  return opts;
}

/// The four zoo backends, at the same shapes the acceptance tests pin.
/// All are >= 20 qubits, so one suite draw fits every target and the
/// cross-backend numbers compare the same input circuits.
const char* kBackends[] = {
    "heavy_hex(rows=3,cols=9)",
    "sycamore(rows=5,cols=4)",
    "trapped_ion(ions=20)",
    "neutral_atom(rows=4,cols=5,radius=1.5)",
};

struct ZooRow {
  std::string backend;  ///< canonical registry spec
  std::string device;   ///< generated device name
  int qubits = 0;
  int edges = 0;
  int circuits = 0;
  double mean_overhead_pct = 0.0;
  double mean_fidelity_decrease_pct = 0.0;
  int swaps = 0;
  double compile_ms = 0.0;
};

/// Physical-stage verification, error severity only: sparse zoo targets
/// legitimately route swap chains through already-measured qubits, which
/// the checker flags as QFS003 warnings — benign for a routed artifact,
/// so only errors (non-native gates, non-adjacent pairs, ...) abort.
void verify_rows_errors_only(const std::vector<bench::SuiteRow>& rows,
                             const device::Device& device) {
  analysis::CheckOptions check;
  check.device = &device;
  check.physical = true;
  for (const auto& r : rows) {
    auto diags = analysis::analyze_circuit(r.mapping.mapped, check);
    std::erase_if(diags, [](const analysis::Diagnostic& d) {
      return d.severity != analysis::Severity::kError;
    });
    if (diags.empty()) continue;
    std::cerr << "suite verification failed:\n"
              << analysis::render_diagnostics(diags, r.name);
    std::exit(2);
  }
}

ZooRow bench_backend(const std::string& spec,
                     const std::vector<workloads::Benchmark>& suite) {
  auto dev = backends::make_device(spec);
  if (!dev.is_ok()) {
    std::cerr << "bench_device_zoo: " << dev.status().message() << "\n";
    std::exit(1);
  }
  const device::Device& device = dev.value();

  bench::SuiteRunConfig config;
  config.mapping.placer = "degree-match";
  config.mapping.router = "lookahead";
  qfs::StopWatch watch;
  std::vector<bench::SuiteRow> rows = bench::run_suite(device, config, suite);
  const double compile_ms = watch.elapsed_ms();
  verify_rows_errors_only(rows, device);

  ZooRow out;
  out.backend = device.spec();
  out.device = device.name();
  out.qubits = device.num_qubits();
  out.edges = static_cast<int>(device.topology().edge_list().size());
  out.circuits = static_cast<int>(rows.size());
  out.compile_ms = compile_ms;
  for (const auto& r : rows) {
    out.mean_overhead_pct += r.mapping.gate_overhead_pct;
    out.mean_fidelity_decrease_pct += r.mapping.fidelity_decrease_pct;
    out.swaps += r.mapping.swaps_inserted;
  }
  if (!rows.empty()) {
    out.mean_overhead_pct /= static_cast<double>(rows.size());
    out.mean_fidelity_decrease_pct /= static_cast<double>(rows.size());
  }
  return out;
}

JsonValue load_or_init(const std::string& path, bool fresh) {
  std::ifstream in(path);
  if (in && !fresh) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = JsonValue::parse(buffer.str());
    if (parsed.is_ok() && parsed.value().is_object() &&
        parsed.value().find("rows") != nullptr) {
      return std::move(parsed.value());
    }
    std::cerr << "bench_device_zoo: " << path
              << " exists but is not a valid bench file; refusing to "
                 "overwrite it\n";
    std::exit(1);
  }
  JsonValue root = JsonValue::object();
  root.set("bench", JsonValue::string("device_zoo"));
  root.set("schema", JsonValue::integer(kSchemaVersion));
  root.set("rows", JsonValue::array());
  return root;
}

bool validate_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "validate: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::parse(buffer.str());
  if (!parsed.is_ok()) {
    std::cerr << "validate: " << parsed.status().message() << "\n";
    return false;
  }
  const JsonValue& root = parsed.value();
  const JsonValue* schema = root.find("schema");
  const JsonValue* bench = root.find("bench");
  const JsonValue* rows = root.find("rows");
  if (schema == nullptr || !schema->is_integer() ||
      schema->as_integer() != kSchemaVersion || bench == nullptr ||
      bench->as_string() != "device_zoo" || rows == nullptr ||
      !rows->is_array() || rows->size() == 0) {
    std::cerr << "validate: bad top-level schema\n";
    return false;
  }
  for (std::size_t i = 0; i < rows->size(); ++i) {
    const JsonValue& row = rows->at(i);
    for (const char* key : {"label", "backend", "device", "suite"}) {
      const JsonValue* field = row.find(key);
      if (field == nullptr || !field->is_string() ||
          field->as_string().empty()) {
        std::cerr << "validate: row " << i << " missing " << key << "\n";
        return false;
      }
    }
    for (const char* key : {"qubits", "edges", "circuits", "swaps"}) {
      const JsonValue* field = row.find(key);
      if (field == nullptr || !field->is_integer() || field->as_integer() < 0) {
        std::cerr << "validate: row " << i << " has bad " << key << "\n";
        return false;
      }
    }
    const JsonValue* ms = row.find("compile_ms");
    if (ms == nullptr || !ms->is_number() || ms->as_number() < 0.0) {
      std::cerr << "validate: row " << i << " has bad compile_ms\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);
  std::cout << "=== Device zoo: paper suite across connectivity regimes "
               "(label: "
            << opts.label << (opts.smoke ? ", smoke" : "") << ") ===\n\n";

  // One suite, every backend: either the checked-in QASM corpus or a
  // generated paper-suite draw capped at 17 qubits so it fits the
  // smallest zoo target (20 qubits).
  std::vector<workloads::Benchmark> suite;
  std::string suite_name;
  if (!opts.qasm_dir.empty()) {
    auto loaded = workloads::load_qasm_directory(opts.qasm_dir);
    if (!loaded.is_ok()) {
      std::cerr << "bench_device_zoo: " << loaded.status().message() << "\n";
      return 1;
    }
    suite = std::move(loaded.value());
    suite_name = "qasm:" + opts.qasm_dir;
  } else {
    workloads::SuiteOptions suite_options;
    suite_options.max_qubits = 17;
    suite_options.max_gates = opts.smoke ? 200 : 600;
    if (opts.smoke) {
      suite_options.random_count = 4;
      suite_options.real_count = 4;
      suite_options.reversible_count = 2;
    }
    qfs::Rng suite_rng(2022);
    suite = workloads::make_suite(suite_options, suite_rng);
    suite_name = opts.smoke ? "paper-smoke" : "paper";
  }

  JsonValue root = load_or_init(opts.out, opts.fresh);
  JsonValue rows_json = *root.find("rows");

  report::TextTable table({"backend", "qubits", "edges", "circuits",
                           "overhead %", "fid. loss %", "swaps",
                           "compile ms"});
  for (const char* spec : kBackends) {
    std::cerr << spec << " ";
    ZooRow row = bench_backend(spec, suite);
    table.add_row({row.backend, std::to_string(row.qubits),
                   std::to_string(row.edges), std::to_string(row.circuits),
                   bench::fmt(row.mean_overhead_pct, 2),
                   bench::fmt(row.mean_fidelity_decrease_pct, 2),
                   std::to_string(row.swaps), bench::fmt(row.compile_ms, 1)});

    JsonValue entry = JsonValue::object();
    entry.set("label", JsonValue::string(opts.label));
    entry.set("backend", JsonValue::string(row.backend));
    entry.set("device", JsonValue::string(row.device));
    entry.set("suite", JsonValue::string(suite_name));
    entry.set("qubits", JsonValue::integer(row.qubits));
    entry.set("edges", JsonValue::integer(row.edges));
    entry.set("circuits", JsonValue::integer(row.circuits));
    entry.set("mean_overhead_pct", JsonValue::number(row.mean_overhead_pct));
    entry.set("mean_fidelity_decrease_pct",
              JsonValue::number(row.mean_fidelity_decrease_pct));
    entry.set("swaps", JsonValue::integer(row.swaps));
    entry.set("compile_ms", JsonValue::number(row.compile_ms));
    entry.set("smoke", JsonValue::boolean(opts.smoke));
    rows_json.push_back(std::move(entry));
  }
  std::cerr << "\n";
  std::cout << table.to_string() << "\n";

  root.set("rows", std::move(rows_json));
  std::ofstream out(opts.out, std::ios::trunc);
  if (!out) {
    std::cerr << "bench_device_zoo: cannot write " << opts.out << "\n";
    return 1;
  }
  out << root.to_pretty_string() << "\n";
  out.close();
  std::cout << "appended rows to " << opts.out << "\n";

  if (opts.validate) {
    const bool valid = validate_bench_file(opts.out);
    std::cout << (valid ? "PASS" : "FAIL") << ": " << opts.out
              << " matches the bench schema\n";
    return valid ? 0 : 1;
  }
  return 0;
}
