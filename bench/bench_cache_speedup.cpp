// Compilation-cache microbench: cold vs warm wall clock over the paper's
// 200-circuit suite, pinning the acceptance contract of the cache
// subsystem:
//   1. the warm run's CSV is byte-identical to the cold run's,
//   2. hit/miss counters are exact (200 misses cold, 200 disk hits warm),
//      including under a parallel fan-out (--jobs),
//   3. the warm run is at least --min-speedup times faster (default 5x;
//      0 disables the timing assertion for load-sensitive CI runners).
//
//   bench_cache_speedup [--jobs N] [--min-speedup X] [--max-gates N]
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "common.h"
#include "report/table.h"
#include "support/strings.h"
#include "support/timer.h"

using namespace qfs;

namespace {

double parse_double_flag(int argc, char** argv, const std::string& flag,
                         double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return std::atof(argv[i + 1]);
    }
  }
  return fallback;
}

int parse_int_flag(int argc, char** argv, const std::string& flag,
                   int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      int value = 0;
      if (!qfs::parse_int(argv[i + 1], value) || value < 0) {
        std::cerr << "bench_cache_speedup: bad value for " << flag << "\n";
        std::exit(1);
      }
      return value;
    }
  }
  return fallback;
}

struct TimedRun {
  std::string csv;
  double seconds = 0.0;
  cache::CacheStatsSnapshot stats;
};

TimedRun timed_suite_run(const device::Device& device,
                         bench::SuiteRunConfig config,
                         cache::CompileCache& cache) {
  config.cache = &cache;
  qfs::StopWatch watch;
  auto rows = bench::run_suite(device, config);
  TimedRun run;
  run.seconds = watch.elapsed_seconds();
  run.csv = bench::suite_rows_to_csv(rows);
  run.stats = cache.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  const double min_speedup = parse_double_flag(argc, argv, "--min-speedup", 5.0);
  std::cout << "=== Compilation cache: cold vs warm suite run ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface17");
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.suite.max_qubits = 17;
  config.suite.max_gates = parse_int_flag(argc, argv, "--max-gates", 3000);
  // An expensive pipeline, so the cold path pays for real placement and
  // routing work (the configuration the cache is for): annealing placement
  // plus SABRE refinement dominates the shared per-run work (suite
  // generation, profiling), which the cache cannot remove.
  config.mapping.placer = "annealing";
  config.mapping.router = "lookahead";
  config.mapping.sabre_refinement_rounds = 2;

  std::string dir = (std::filesystem::temp_directory_path() /
                     "qfs_bench_cache_speedup")
                        .string();
  std::filesystem::remove_all(dir);
  const std::uint64_t kCircuits = 200;

  std::cerr << "cold run ";
  cache::CompileCache cold_cache(cache::CacheConfig{dir});
  TimedRun cold = timed_suite_run(dev, config, cold_cache);
  bench::SuiteRunConfig cold_summary = config;
  cold_summary.cache = &cold_cache;
  bench::print_cache_summary(cold_summary);

  std::cerr << "warm run ";
  // A fresh cache instance on the same directory: the memory tier is cold,
  // so every hit is served by the content-addressed disk store — the
  // cross-process reuse scenario.
  cache::CompileCache warm_cache(cache::CacheConfig{dir});
  TimedRun warm = timed_suite_run(dev, config, warm_cache);
  bench::SuiteRunConfig warm_summary = config;
  warm_summary.cache = &warm_cache;
  bench::print_cache_summary(warm_summary);

  report::TextTable t({"run", "wall clock (s)", "hits", "misses", "stores"});
  t.add_row({"cold", bench::fmt(cold.seconds, 3),
             std::to_string(cold.stats.hits()),
             std::to_string(cold.stats.misses),
             std::to_string(cold.stats.stores)});
  t.add_row({"warm", bench::fmt(warm.seconds, 3),
             std::to_string(warm.stats.hits()),
             std::to_string(warm.stats.misses),
             std::to_string(warm.stats.stores)});
  std::cout << t.to_string() << "\n";

  bool ok = true;
  auto check = [&ok](bool condition, const std::string& what) {
    std::cout << (condition ? "PASS" : "FAIL") << ": " << what << "\n";
    ok = ok && condition;
  };
  check(cold.csv == warm.csv, "warm CSV byte-identical to cold CSV");
  check(cold.stats.misses == kCircuits && cold.stats.stores == kCircuits &&
            cold.stats.hits() == 0,
        "cold counters exact (" + std::to_string(kCircuits) +
            " misses, stores)");
  check(warm.stats.disk_hits == kCircuits && warm.stats.misses == 0 &&
            warm.stats.corrupt_entries == 0,
        "warm counters exact (" + std::to_string(kCircuits) + " disk hits)");
  double speedup = warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::cout << "warm speedup: " << bench::fmt(speedup, 2) << "x (required >= "
            << bench::fmt(min_speedup, 2) << "x)\n";
  if (min_speedup > 0.0) {
    check(speedup >= min_speedup, "warm run meets the speedup floor");
  }

  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
