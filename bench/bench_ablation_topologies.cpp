// Ablation: device topology. The same suite mapped onto different coupling
// graphs quantifies how much the chip's connectivity (a hardware design
// axis of the paper's co-design loop) determines mapping overhead.
#include <iostream>

#include "common.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace qfs;

int main(int argc, char** argv) {
  const int jobs = bench::request_flags(argc, argv).jobs;
  std::cout << "=== Ablation: topologies (trivial mapper, same suite) ===\n\n";

  struct Target {
    std::string label;
    device::Device device;
  };
  std::vector<Target> targets;
  targets.push_back({"line-97", device::line_device(97)});
  targets.push_back({"grid-10x10", device::grid_device(10, 10)});
  targets.push_back({"surface-97", device::surface97_device()});
  targets.push_back({"full-97", device::fully_connected_device(97)});

  report::TextTable t({"topology", "mean overhead %", "median overhead %",
                       "mean swaps", "mean depth overhead %"});

  std::vector<std::pair<std::string, double>> means;
  for (auto& target : targets) {
    bench::SuiteRunConfig config;
    config.jobs = jobs;
    config.suite.random_count = 25;
    config.suite.real_count = 25;
    config.suite.reversible_count = 10;
    config.suite.max_gates = 1200;
    std::cerr << target.label << " ";
    auto rows = bench::run_suite(target.device, config);

    std::vector<double> overhead, swaps, depth;
    for (const auto& r : rows) {
      overhead.push_back(r.mapping.gate_overhead_pct);
      swaps.push_back(r.mapping.swaps_inserted);
      depth.push_back(r.mapping.depth_overhead_pct);
    }
    t.add_row({target.label, bench::fmt(stats::mean(overhead), 1),
               bench::fmt(stats::median(overhead), 1),
               bench::fmt(stats::mean(swaps), 1),
               bench::fmt(stats::mean(depth), 1)});
    means.emplace_back(target.label, stats::mean(overhead));
  }
  std::cout << t.to_string() << "\n";

  bool ordered = means[3].second <= means[2].second &&  // full <= surface
                 means[2].second <= means[0].second;    // surface <= line
  std::cout << "Connectivity ordering (full <= surface <= line overhead): "
            << (ordered ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "Full connectivity needs no SWAPs by construction; richer "
               "coupling monotonically reduces routing pressure.\n";
  return 0;
}
