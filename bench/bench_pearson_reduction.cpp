// Sec. IV reproduction: the Pearson-correlation reduction of the
// hand-picked interaction-graph metric set.
//
// The paper: "a large number of handpicked, mapping-related metrics is
// codependent ... a Pearson correlation matrix was created. Applying this
// method reduced our previous metric set to: average shortest path
// (hopcount/closeness), maximal and minimal degree and adjacency matrix
// standard deviation."
#include <iostream>

#include "common.h"
#include "report/table.h"
#include "stats/correlation.h"

using namespace qfs;

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  std::cout << "=== Sec. IV: Pearson reduction of the metric set ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface97");
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.suite.max_gates = 3000;
  std::cerr << "profiling 200 circuits ";
  auto rows = bench::run_suite(dev, config);

  std::vector<profile::CircuitProfile> profiles;
  for (const auto& r : rows) {
    if (r.profile.ig_nodes >= 2) profiles.push_back(r.profile);
  }
  auto features = profile::profiles_to_features(profiles);
  const auto& names = profile::graph_metric_names();

  // Print the correlation matrix (upper triangle, abbreviated headers).
  auto m = stats::correlation_matrix(features);
  std::cout << "Pearson correlation matrix over " << profiles.size()
            << " circuits (" << names.size() << " metrics):\n\n";
  std::vector<std::string> headers = {"metric"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    headers.push_back("m" + std::to_string(i));
  }
  report::TextTable mt(headers);
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row = {"m" + std::to_string(i) + " " + names[i]};
    for (std::size_t j = 0; j < names.size(); ++j) {
      row.push_back(bench::fmt(m[i][j], 2));
    }
    mt.add_row(row);
  }
  std::cout << mt.to_string() << "\n";

  const double threshold = 0.85;
  auto reduction = stats::reduce_features(features, threshold);

  std::cout << "Greedy reduction at |rho| >= " << threshold << ":\n\n";
  report::TextTable t({"metric", "outcome", "redundant with"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    bool kept = false;
    for (int k : reduction.kept) {
      if (k == static_cast<int>(i)) kept = true;
    }
    if (kept) {
      t.add_row({names[i], "KEPT", "-"});
    } else {
      int with = -1;
      for (std::size_t d = 0; d < reduction.dropped.size(); ++d) {
        if (reduction.dropped[d] == static_cast<int>(i)) {
          with = reduction.redundant_with[d];
        }
      }
      t.add_row({names[i], "dropped",
                 with >= 0 ? names[static_cast<std::size_t>(with)] : "?"});
    }
  }
  std::cout << t.to_string() << "\n";

  // The paper's reduced set. Table I groups "maximal and minimal degree"
  // into one row, so a member dropped as redundant with another member of
  // the same set still counts as represented.
  const std::vector<std::string> paper_set = {
      "avg_shortest_path", "max_degree", "min_degree", "adj_matrix_stddev"};
  auto in_paper_set = [&paper_set](const std::string& name) {
    for (const auto& p : paper_set) {
      if (p == name) return true;
    }
    return false;
  };
  bool all_present = true;
  for (const auto& want : paper_set) {
    bool represented = false;
    for (int k : reduction.kept) {
      if (names[static_cast<std::size_t>(k)] == want) represented = true;
    }
    for (std::size_t d = 0; d < reduction.dropped.size() && !represented; ++d) {
      if (names[static_cast<std::size_t>(reduction.dropped[d])] == want &&
          in_paper_set(names[static_cast<std::size_t>(
              reduction.redundant_with[d])])) {
        represented = true;  // absorbed by its own Table-I row partner
      }
    }
    if (!represented) all_present = false;
  }
  std::cout << "Kept " << reduction.kept.size() << " of " << names.size()
            << " metrics.\n";
  std::cout << "Paper's reduced set {avg shortest path, max degree, min "
               "degree, adj. matrix std dev} retained (allowing within-row "
               "absorption): "
            << (all_present ? "YES" : "NO") << "\n";
  return 0;
}
