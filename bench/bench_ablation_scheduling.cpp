// Ablation: why scheduling matters — decoherence.
//
// The paper's mapping step 2: "Scheduling quantum operations to leverage
// parallelism and therefore shorten execution time" matters because
// "qubits are fragile and decohere over time". This bench quantifies that:
// the same mapped circuits run under (a) fully serial execution, (b) ASAP
// parallel scheduling, (c) ASAP + crosstalk exclusion, and the
// decoherence-aware fidelity separates them.
#include <iostream>

#include "common.h"
#include "compiler/schedule.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace qfs;

namespace {

/// Force a fully serial schedule by inserting a barrier after every gate.
circuit::Circuit serialise(const circuit::Circuit& c) {
  std::vector<int> all;
  for (int q = 0; q < c.num_qubits(); ++q) all.push_back(q);
  circuit::Circuit out(c.num_qubits(), c.name());
  for (const auto& g : c.gates()) {
    out.add(g);
    out.barrier(all);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  std::cout << "=== Ablation: scheduling strategy vs decoherence "
               "(surface-17) ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface17");
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.suite.random_count = 15;
  config.suite.real_count = 15;
  config.suite.reversible_count = 10;
  config.suite.max_qubits = 17;
  config.suite.max_gates = 400;
  std::cerr << "mapping 40 circuits ";
  auto rows = bench::run_suite(dev, config);

  std::vector<double> serial_ms, asap_ms, safe_ms;
  std::vector<double> serial_f, asap_f, safe_f;
  for (const auto& row : rows) {
    const auto& mapped = row.mapping.mapped;

    circuit::Circuit serial = serialise(mapped);
    compiler::Schedule s_serial = compiler::asap_schedule(serial, dev);
    serial_ms.push_back(s_serial.makespan_cycles);
    serial_f.push_back(
        compiler::estimate_log_fidelity_with_decoherence(serial, dev, s_serial));

    compiler::Schedule s_asap = compiler::asap_schedule(mapped, dev);
    asap_ms.push_back(s_asap.makespan_cycles);
    asap_f.push_back(
        compiler::estimate_log_fidelity_with_decoherence(mapped, dev, s_asap));

    compiler::ScheduleOptions opts;
    opts.avoid_crosstalk = true;
    compiler::Schedule s_safe = compiler::asap_schedule(mapped, dev, opts);
    safe_ms.push_back(s_safe.makespan_cycles);
    safe_f.push_back(
        compiler::estimate_log_fidelity_with_decoherence(mapped, dev, s_safe));
  }

  report::TextTable t({"scheduler", "mean makespan (cycles)",
                       "mean log fidelity incl. decoherence"});
  t.add_row({"serial (no parallelism)", bench::fmt(stats::mean(serial_ms), 1),
             bench::fmt(stats::mean(serial_f), 2)});
  t.add_row({"ASAP", bench::fmt(stats::mean(asap_ms), 1),
             bench::fmt(stats::mean(asap_f), 2)});
  t.add_row({"ASAP + crosstalk exclusion", bench::fmt(stats::mean(safe_ms), 1),
             bench::fmt(stats::mean(safe_f), 2)});
  std::cout << t.to_string() << "\n";

  bool parallel_shorter = stats::mean(asap_ms) < stats::mean(serial_ms);
  bool parallel_better = stats::mean(asap_f) > stats::mean(serial_f);
  bool safe_between = stats::mean(safe_ms) >= stats::mean(asap_ms);
  std::cout << "parallel schedule shorter than serial:          "
            << (parallel_shorter ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "parallelism reduces decoherence loss:           "
            << (parallel_better ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "crosstalk exclusion costs some of that latency: "
            << (safe_between ? "HOLDS" : "VIOLATED") << "\n";
  return 0;
}
