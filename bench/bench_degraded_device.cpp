// Survival study: how gracefully does compilation degrade as Surface-97
// (the paper's extended Surface-17) loses qubits and couplers?
//
// For each fault mode (dead edges / dead qubits) and casualty fraction, a
// seeded FaultInjector degrades the chip, compile_resilient() climbs its
// fallback ladder, and we record survival, gate overhead and fidelity
// decrease. Emits a survival-curve CSV on stdout and a summary table on
// stderr.
#include <iostream>
#include <vector>

#include "common.h"
#include "device/device.h"
#include "device/faults.h"
#include "report/table.h"
#include "stats/descriptive.h"
#include "support/csv.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

using namespace qfs;

namespace {

struct Workload {
  std::string name;
  circuit::Circuit circuit;
};

std::vector<Workload> make_workloads() {
  Rng rng(2022);
  std::vector<Workload> out;
  out.push_back({"ghz-20", workloads::ghz(20)});
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 16;
  spec.num_gates = 200;
  spec.two_qubit_fraction = 0.35;
  out.push_back({"random-16q200g", workloads::random_circuit(spec, rng)});
  spec.num_qubits = 32;
  spec.num_gates = 400;
  out.push_back({"random-32q400g", workloads::random_circuit(spec, rng)});
  return out;
}

}  // namespace

int main() {
  std::cerr << "=== Degraded-device survival study (Surface-97) ===\n";

  const device::Device pristine = device::surface97_device();
  const auto workloads_list = make_workloads();
  const std::vector<double> fractions = {0.0,  0.05, 0.10, 0.15,
                                         0.20, 0.25, 0.30};
  const int seeds_per_point = 3;

  CsvWriter csv(std::cout);
  csv.header({"mode", "fraction", "seed", "circuit", "healthy_qubits",
              "dead_edges", "success", "attempts", "gate_overhead_pct",
              "fidelity_decrease_pct"});

  report::TextTable summary({"mode", "fraction", "survival %",
                             "mean overhead %", "mean fidelity decrease %"});

  for (const std::string mode : {"edges", "qubits"}) {
    for (double fraction : fractions) {
      int attempts_total = 0, successes = 0, total = 0;
      std::vector<double> overheads, fdecreases;
      for (int seed = 0; seed < seeds_per_point; ++seed) {
        device::FaultSpec spec;
        spec.seed = 1000 + static_cast<std::uint64_t>(seed);
        spec.fidelity_drift = 0.01;
        if (mode == "edges") {
          spec.dead_edge_fraction = fraction;
        } else {
          spec.dead_qubit_fraction = fraction;
        }
        auto degraded = device::FaultInjector(spec).apply(pristine);
        if (!degraded.is_ok()) {
          // Unsalvageable chip: every workload at this point is a casualty.
          for (const auto& w : workloads_list) {
            csv.row({mode, bench::fmt(fraction, 2), std::to_string(seed),
                     w.name, "0", "-", "0", "0", "", ""});
            ++total;
          }
          continue;
        }
        const device::DegradedDevice& dd = degraded.value();

        for (const auto& w : workloads_list) {
          ++total;
          mapper::ResilientOptions opts;
          opts.base.placer = "degree-match";
          opts.base.router = "lookahead";
          opts.max_attempts = 6;
          opts.seed = 2022 + static_cast<std::uint64_t>(seed);
          mapper::CompileAttemptLog log;
          auto res = mapper::compile_resilient(w.circuit, dd.device, opts, &log);
          bool ok = res.is_ok();
          std::string overhead, fdec;
          if (ok) {
            ++successes;
            overhead = bench::fmt(res.value().mapping.gate_overhead_pct, 2);
            fdec = bench::fmt(res.value().mapping.fidelity_decrease_pct, 3);
            overheads.push_back(res.value().mapping.gate_overhead_pct);
            fdecreases.push_back(res.value().mapping.fidelity_decrease_pct);
          }
          attempts_total += static_cast<int>(log.size());
          csv.row({mode, bench::fmt(fraction, 2), std::to_string(seed), w.name,
                   std::to_string(dd.device.num_qubits()),
                   std::to_string(dd.dead_edges), ok ? "1" : "0",
                   std::to_string(log.size()), overhead, fdec});
        }
      }
      summary.add_row(
          {mode, bench::fmt(fraction, 2),
           bench::fmt(total ? 100.0 * successes / total : 0.0, 1),
           overheads.empty() ? "-" : bench::fmt(stats::mean(overheads), 1),
           fdecreases.empty() ? "-" : bench::fmt(stats::mean(fdecreases), 2)});
      std::cerr << "." << std::flush;
    }
  }
  std::cerr << "\n" << summary.to_string();
  std::cerr << "Reading: survival stays at 100% while the largest healthy\n"
               "component still fits the widest circuit; overhead and\n"
               "fidelity decrease grow as routing detours around casualties.\n";
  return 0;
}
