// Survival study: how gracefully does compilation degrade as Surface-97
// (the paper's extended Surface-17) loses qubits and couplers?
//
// For each fault mode (dead edges / dead qubits) and casualty fraction, a
// seeded FaultInjector degrades the chip, compile_resilient() climbs its
// fallback ladder, and we record survival, gate overhead and fidelity
// decrease. The (mode, fraction, seed) grid points are independent, so the
// sweep fans out over --jobs worker threads; every grid point derives its
// randomness from its own seeds, so the CSV is byte-identical for any jobs
// value. Emits a survival-curve CSV on stdout and a summary table on
// stderr.
#include <iostream>
#include <vector>

#include "common.h"
#include "device/device.h"
#include "device/faults.h"
#include "report/table.h"
#include "stats/descriptive.h"
#include "support/csv.h"
#include "support/parallel.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

using namespace qfs;

namespace {

struct Workload {
  std::string name;
  circuit::Circuit circuit;
};

std::vector<Workload> make_workloads() {
  Rng rng(2022);
  std::vector<Workload> out;
  out.push_back({"ghz-20", workloads::ghz(20)});
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 16;
  spec.num_gates = 200;
  spec.two_qubit_fraction = 0.35;
  out.push_back({"random-16q200g", workloads::random_circuit(spec, rng)});
  spec.num_qubits = 32;
  spec.num_gates = 400;
  out.push_back({"random-32q400g", workloads::random_circuit(spec, rng)});
  return out;
}

/// One (mode, fraction, seed) grid point of the sweep.
struct GridPoint {
  std::string mode;
  double fraction = 0.0;
  int seed = 0;
};

/// Per-workload outcome at a grid point, ready for CSV emission.
struct WorkloadOutcome {
  std::vector<std::string> csv_fields;
  bool ok = false;
  int attempts = 0;
  double gate_overhead_pct = 0.0;
  double fidelity_decrease_pct = 0.0;
};

std::vector<WorkloadOutcome> run_grid_point(
    const device::Device& pristine, const std::vector<Workload>& workloads_list,
    const GridPoint& point) {
  std::vector<WorkloadOutcome> out;
  device::FaultSpec spec;
  spec.seed = 1000 + static_cast<std::uint64_t>(point.seed);
  spec.fidelity_drift = 0.01;
  if (point.mode == "edges") {
    spec.dead_edge_fraction = point.fraction;
  } else {
    spec.dead_qubit_fraction = point.fraction;
  }
  auto degraded = device::FaultInjector(spec).apply(pristine);
  if (!degraded.is_ok()) {
    // Unsalvageable chip: every workload at this point is a casualty.
    for (const auto& w : workloads_list) {
      WorkloadOutcome o;
      o.csv_fields = {point.mode,        bench::fmt(point.fraction, 2),
                      std::to_string(point.seed), w.name,
                      "0",               "-",
                      "0",               "0",
                      "",                ""};
      out.push_back(std::move(o));
    }
    return out;
  }
  const device::DegradedDevice& dd = degraded.value();

  for (const auto& w : workloads_list) {
    mapper::ResilientOptions opts;
    opts.base.placer = "degree-match";
    opts.base.router = "lookahead";
    opts.max_attempts = 6;
    opts.seed = 2022 + static_cast<std::uint64_t>(point.seed);
    mapper::CompileAttemptLog log;
    auto res = mapper::compile_resilient(w.circuit, dd.device, opts, &log);
    WorkloadOutcome o;
    o.ok = res.is_ok();
    o.attempts = static_cast<int>(log.size());
    std::string overhead, fdec;
    if (o.ok) {
      o.gate_overhead_pct = res.value().mapping.gate_overhead_pct;
      o.fidelity_decrease_pct = res.value().mapping.fidelity_decrease_pct;
      overhead = bench::fmt(o.gate_overhead_pct, 2);
      fdec = bench::fmt(o.fidelity_decrease_pct, 3);
    }
    o.csv_fields = {point.mode,
                    bench::fmt(point.fraction, 2),
                    std::to_string(point.seed),
                    w.name,
                    std::to_string(dd.device.num_qubits()),
                    std::to_string(dd.dead_edges),
                    o.ok ? "1" : "0",
                    std::to_string(log.size()),
                    overhead,
                    fdec};
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = bench::request_flags(argc, argv).jobs;
  std::cerr << "=== Degraded-device survival study (Surface-97) ===\n";

  const device::Device pristine = device::surface97_device();
  const auto workloads_list = make_workloads();
  const std::vector<double> fractions = {0.0,  0.05, 0.10, 0.15,
                                         0.20, 0.25, 0.30};
  const int seeds_per_point = 3;

  std::vector<GridPoint> grid;
  for (const std::string mode : {"edges", "qubits"}) {
    for (double fraction : fractions) {
      for (int seed = 0; seed < seeds_per_point; ++seed) {
        grid.push_back({mode, fraction, seed});
      }
    }
  }

  ProgressReporter progress(seeds_per_point);
  auto results = parallel_map(jobs, grid.size(), [&](std::size_t i) {
    auto outcomes = run_grid_point(pristine, workloads_list, grid[i]);
    progress.tick();
    return outcomes;
  });
  progress.finish();

  CsvWriter csv(std::cout);
  csv.header({"mode", "fraction", "seed", "circuit", "healthy_qubits",
              "dead_edges", "success", "attempts", "gate_overhead_pct",
              "fidelity_decrease_pct"});
  for (const auto& outcomes : results) {
    for (const auto& o : outcomes) csv.row(o.csv_fields);
  }

  // Aggregate per (mode, fraction) over the seed axis, in grid order.
  report::TextTable summary({"mode", "fraction", "survival %",
                             "mean overhead %", "mean fidelity decrease %"});
  for (std::size_t i = 0; i < grid.size(); i += seeds_per_point) {
    int successes = 0, total = 0;
    std::vector<double> overheads, fdecreases;
    for (int s = 0; s < seeds_per_point; ++s) {
      for (const auto& o : results[i + static_cast<std::size_t>(s)]) {
        ++total;
        if (o.ok) {
          ++successes;
          overheads.push_back(o.gate_overhead_pct);
          fdecreases.push_back(o.fidelity_decrease_pct);
        }
      }
    }
    summary.add_row(
        {grid[i].mode, bench::fmt(grid[i].fraction, 2),
         bench::fmt(total ? 100.0 * successes / total : 0.0, 1),
         overheads.empty() ? "-" : bench::fmt(stats::mean(overheads), 1),
         fdecreases.empty() ? "-" : bench::fmt(stats::mean(fdecreases), 2)});
  }
  std::cerr << summary.to_string();
  std::cerr << "Reading: survival stays at 100% while the largest healthy\n"
               "component still fits the widest circuit; overhead and\n"
               "fidelity decrease grow as routing detours around casualties.\n";
  return 0;
}
