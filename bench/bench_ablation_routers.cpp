// Ablation: routing strategy. The paper's example uses the trivial
// (OpenQL-style) router; qfs also implements a SABRE-style lookahead router
// and a noise-aware router. This bench quantifies what better routing buys
// on the same suite/device — the "hardware-aware compilation" side of the
// paper's co-design argument.
#include <cstdlib>
#include <iostream>

#include "common.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace qfs;

namespace {

int parse_int_flag(int argc, char** argv, const std::string& flag,
                   int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      int value = 0;
      if (!qfs::parse_int(argv[i + 1], value) || value < 0) {
        std::cerr << "bench_ablation_routers: bad value for " << flag << "\n";
        std::exit(1);
      }
      return value;
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  const int max_gates = parse_int_flag(argc, argv, "--max-gates", 1500);
  std::cout << "=== Ablation: routers (surface-97, trivial placement) ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface97");
  // Error variability across the chip so the noise-aware router has real
  // signal to exploit.
  {
    qfs::Rng noise(7);
    dev.mutable_error_model().randomize(dev.num_qubits(),
                                        dev.topology().edge_list(), 0.008,
                                        noise);
  }

  report::TextTable t({"router", "mean overhead %", "median overhead %",
                       "mean swaps", "mean log-fidelity after"});

  std::vector<std::pair<std::string, std::vector<double>>> overhead_by_router;
  for (const std::string router :
       {"trivial", "lookahead", "noise-aware", "bridge"}) {
    bench::SuiteRunConfig config;
    config.jobs = jobs;
    config.suite.random_count = 30;
    config.suite.real_count = 30;
    config.suite.reversible_count = 15;
    config.suite.max_gates = max_gates;
    config.mapping.router = router;
    std::cerr << router << " ";
    auto rows = bench::run_suite(dev, config);

    std::vector<double> overhead, swaps, logf;
    for (const auto& r : rows) {
      overhead.push_back(r.mapping.gate_overhead_pct);
      swaps.push_back(r.mapping.swaps_inserted);
      logf.push_back(r.mapping.log_fidelity_after);
    }
    t.add_row({router, bench::fmt(stats::mean(overhead), 1),
               bench::fmt(stats::median(overhead), 1),
               bench::fmt(stats::mean(swaps), 1),
               bench::fmt(stats::mean(logf), 2)});
    overhead_by_router.emplace_back(router, overhead);
  }
  std::cout << t.to_string() << "\n";

  double trivial_mean = stats::mean(overhead_by_router[0].second);
  double lookahead_mean = stats::mean(overhead_by_router[1].second);
  std::cout << "Lookahead beats the trivial baseline on mean overhead: "
            << (lookahead_mean < trivial_mean ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "(Identical suites per router: seeds are fixed, so rows are "
               "paired.)\n";
  return 0;
}
