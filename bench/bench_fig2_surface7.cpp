// Fig. 2 reproduction: running a quantum circuit on the Surface-7 chip.
//
// The paper's figure shows a small circuit, its weighted interaction graph,
// the Surface-7 coupling graph, and the mapped circuit in which one extra
// SWAP makes every CNOT nearest-neighbour. This bench prints all four
// artefacts.
#include <iostream>

#include "common.h"
#include "compiler/decompose.h"
#include "device/device.h"
#include "profile/interaction.h"
#include "report/table.h"
#include "sim/equivalence.h"

using namespace qfs;

namespace {

void print_graph(const graph::Graph& g, const std::string& title) {
  std::cout << title << "\n";
  for (const auto& e : g.edges()) {
    std::cout << "  q" << e.u << " -- q" << e.v << "  (weight "
              << bench::fmt(e.weight, 0) << ")\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig. 2: running a quantum circuit on Surface-7 ===\n\n";

  // A 4-qubit CNOT circuit in the spirit of the figure: q1 interacts with
  // q0 twice and with q2/q3 once; q2-q3 interact once.
  circuit::Circuit c(4, "fig2");
  c.cx(0, 1).cx(1, 2).cx(0, 1).cx(1, 3).cx(2, 3);

  std::cout << c.to_string() << "\n";
  print_graph(profile::interaction_graph(c),
              "Interaction graph (edges weighted by #two-qubit gates):");

  device::Device d = device::surface7_device();
  print_graph(d.topology().coupling(), "Surface-7 coupling graph:");

  // The figure's placement: every CNOT pair is coupled except (q2, q3),
  // which sits at distance 2 and costs exactly one SWAP.
  mapper::MappingOptions options;
  options.initial_layout = {5, 3, 6, 1};
  std::cout << "Figure placement: q0->Q5 q1->Q3 q2->Q6 q3->Q1\n\n";
  qfs::Rng rng(1);
  mapper::MappingResult r = mapper::map_circuit(c, d, options, rng);

  report::TextTable t({"metric", "value"});
  t.add_row({"gates before mapping (primitive set)",
             std::to_string(r.gates_before)});
  t.add_row({"gates after mapping", std::to_string(r.gates_after)});
  t.add_row({"SWAPs inserted", std::to_string(r.swaps_inserted)});
  t.add_row({"gate overhead %", bench::fmt(r.gate_overhead_pct, 1)});
  t.add_row({"estimated fidelity before", bench::fmt(r.fidelity_before, 4)});
  t.add_row({"estimated fidelity after", bench::fmt(r.fidelity_after, 4)});
  std::cout << t.to_string() << "\n";

  std::cout << "Initial layout (virtual -> physical): ";
  for (std::size_t v = 0; v < r.initial_layout.size(); ++v) {
    std::cout << "q" << v << "->Q" << r.initial_layout[v] << " ";
  }
  std::cout << "\nFinal layout   (virtual -> physical): ";
  for (std::size_t v = 0; v < r.final_layout.size(); ++v) {
    std::cout << "q" << v << "->Q" << r.final_layout[v] << " ";
  }
  std::cout << "\n\nMapped circuit (Surface-7 primitives):\n"
            << r.mapped.to_string();

  qfs::Rng check(7);
  bool ok = sim::mapping_preserves_semantics(c, r.mapped, r.initial_layout,
                                             r.final_layout, check, 3, 1e-7);
  std::cout << "\nSemantics preserved under layouts: " << (ok ? "YES" : "NO")
            << "\n";
  std::cout << "\nPaper expectation: the non-nearest-neighbour CNOT costs one "
               "SWAP; all CNOTs become executable.\n";
  return ok ? 0 : 1;
}
