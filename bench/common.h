// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/checkers.h"
#include "analysis/diagnostic.h"
#include "mapper/pipeline.h"
#include "profile/circuit_profile.h"
#include "report/cache_summary.h"
#include "service/api.h"
#include "service/flags.h"
#include "service/service.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workloads/suite.h"

namespace qfs::bench {

/// One suite circuit after profiling and mapping: everything the paper's
/// evaluation figures plot.
struct SuiteRow {
  std::string name;
  workloads::Family family = workloads::Family::kRandom;
  profile::CircuitProfile profile;
  mapper::MappingResult mapping;
};

struct SuiteRunConfig {
  std::uint64_t seed = 2022;  // the paper's venue year: fixed default seed
  /// Worker threads for the compile fan-out (0 = one per hardware thread).
  /// Output is byte-identical for every value, including 1.
  int jobs = 1;
  workloads::SuiteOptions suite;
  mapper::MappingOptions mapping;
  /// Optional compilation cache (not owned). When set, each circuit's
  /// mapping is keyed by (canonical QASM, device, mapping options, derived
  /// seed) and reused on a hit; artifacts round-trip exactly, so warm runs
  /// are byte-identical to cold ones (pinned by cache_test and
  /// bench_cache_speedup).
  cache::CompileCache* cache = nullptr;
};

/// Profile every suite circuit and map it onto `device`, fanning the
/// per-circuit work over `config.jobs` threads. Rows come back in suite
/// order. Prints a progress dot every 20 circuits (benches run
/// interactively).
///
/// Determinism contract: suite generation uses a single Rng(config.seed)
/// stream (suite contents depend only on the seed), and the mapping of
/// circuit i draws from an independent Rng(derive_seed(config.seed, i))
/// stream — never from a stream shared with generation or with other
/// circuits. Row i therefore depends only on (seed, i): results are
/// byte-identical for any jobs value, and adding or removing a benchmark
/// never perturbs the other rows.
inline std::vector<SuiteRow> run_suite(const device::Device& device,
                                       const SuiteRunConfig& config,
                                       const std::vector<workloads::Benchmark>& suite) {
  // Every per-circuit compile goes through the same service entrypoint the
  // daemon and qfsc use, with the "direct" pipeline pinning the historical
  // one-attempt bench semantics. Circuit and device are lent by pointer —
  // nothing is serialized on this path.
  service::ServiceConfig service_config;
  service_config.cache = config.cache;
  const service::CompileService service(service_config);
  qfs::ProgressReporter progress(20);
  auto rows =
      qfs::parallel_map(config.jobs, suite.size(), [&](std::size_t i) {
        const auto& b = suite[i];
        SuiteRow row;
        row.name = b.name;
        row.family = b.family;
        row.profile = profile::profile_circuit(b.circuit);
        service::CompileRequest request;
        request.circuit = &b.circuit;
        request.source_name = b.name;
        request.device_obj = &device;
        request.options = config.mapping;
        request.pipeline = "direct";
        request.seed = qfs::derive_seed(config.seed, i);
        request.want_digest = false;
        service::CompileResponse resp = service.execute(request);
        QFS_ASSERT_MSG(resp.ok(), "suite compile failed for " + b.name +
                                      ": " + resp.error_message);
        row.mapping = std::move(resp.mapping);
        progress.tick();
        return row;
      });
  progress.finish();
  return rows;
}

/// The generated-suite form every figure bench uses: draw the paper suite
/// from Rng(config.seed), then compile it. The explicit-suite overload
/// above is the ingestion path (QASMBench fixtures, checked-in corpora) —
/// identical compile semantics, externally supplied circuits.
inline std::vector<SuiteRow> run_suite(const device::Device& device,
                                       const SuiteRunConfig& config) {
  qfs::Rng suite_rng(config.seed);
  return run_suite(device, config,
                   workloads::make_suite(config.suite, suite_rng));
}

/// Resolve the bench's target device: the --device registry spec when the
/// user gave one, else the bench's historical default. Exits with code 1 on
/// an unknown spec (same contract as the other flag errors).
inline device::Device resolve_device(const service::RequestFlagValues& flags,
                                     const std::string& fallback_spec) {
  const std::string& spec = flags.device_set ? flags.device : fallback_spec;
  device::Device dev;
  std::string error;
  if (!service::CompileService::parse_device(spec, dev, error)) {
    std::cerr << "bad --device: " << error << "\n";
    std::exit(1);
  }
  return dev;
}

inline std::string fmt(double v, int precision = 3) {
  return qfs::format_double(v, precision);
}

/// Run the static verifier (analysis::analyze_circuit, physical stage) over
/// every mapped circuit of the suite and abort on the first diagnostic.
/// A mapper bug that emits a non-native or non-adjacent gate would silently
/// skew every figure downstream — better to die loudly here.
inline void verify_suite_rows(const std::vector<SuiteRow>& rows,
                              const device::Device& device) {
  analysis::CheckOptions opts;
  opts.device = &device;
  opts.physical = true;
  for (const auto& r : rows) {
    auto diags = analysis::analyze_circuit(r.mapping.mapped, opts);
    if (diags.empty()) continue;
    std::cerr << "suite verification failed:\n"
              << analysis::render_diagnostics(diags, r.name);
    std::exit(2);
  }
}

/// Marker per family, following the paper's figures (squares = synthetic,
/// circles = real).
inline char family_marker(workloads::Family family) {
  switch (family) {
    case workloads::Family::kRandom: return 's';
    case workloads::Family::kReal: return 'o';
    case workloads::Family::kReversible: return 'r';
  }
  return '?';
}

/// Canonical CSV rendering of suite rows; what the determinism ctest pins
/// byte-identical across --jobs values.
inline std::string suite_rows_to_csv(const std::vector<SuiteRow>& rows) {
  std::ostringstream os;
  os << "name,family,gates_before,gates_after,swaps,gate_overhead_pct,"
        "depth_after,fidelity_decrease_pct\n";
  for (const auto& r : rows) {
    os << r.name << ',' << workloads::family_name(r.family) << ','
       << r.mapping.gates_before << ',' << r.mapping.gates_after << ','
       << r.mapping.swaps_inserted << ','
       << fmt(r.mapping.gate_overhead_pct, 4) << ',' << r.mapping.depth_after
       << ',' << fmt(r.mapping.fidelity_decrease_pct, 4) << '\n';
  }
  return os.str();
}

/// Parse the shared request flags every bench understands (--jobs,
/// --cache-dir, --seed, --placer, --router, --device) through the service
/// layer's single implementation; unknown arguments are ignored so benches
/// can add their own. Exits with code 1 on a malformed value, matching the
/// historical parse_jobs behaviour this replaces.
inline service::RequestFlagValues request_flags(int argc, char** argv) {
  service::RequestFlagValues flags;
  qfs::Status status = service::parse_request_flags(argc, argv, flags);
  if (!status.is_ok()) {
    std::cerr << argv[0] << ": " << status.message() << "\n";
    std::exit(1);
  }
  return flags;
}

/// Print the standard suite-bench cache summary line (stderr, alongside the
/// progress dots) when a cache was in use.
inline void print_cache_summary(const SuiteRunConfig& config) {
  if (config.cache == nullptr) return;
  std::cerr << report::cache_summary_line(config.cache->stats()) << "\n";
}

}  // namespace qfs::bench
