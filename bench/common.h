// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "mapper/pipeline.h"
#include "profile/circuit_profile.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workloads/suite.h"

namespace qfs::bench {

/// One suite circuit after profiling and mapping: everything the paper's
/// evaluation figures plot.
struct SuiteRow {
  std::string name;
  workloads::Family family = workloads::Family::kRandom;
  profile::CircuitProfile profile;
  mapper::MappingResult mapping;
};

struct SuiteRunConfig {
  std::uint64_t seed = 2022;  // the paper's venue year: fixed default seed
  workloads::SuiteOptions suite;
  mapper::MappingOptions mapping;
};

/// Generate the suite, profile every circuit and map it onto `device`.
/// Prints a progress dot every 20 circuits (benches run interactively).
inline std::vector<SuiteRow> run_suite(const device::Device& device,
                                       const SuiteRunConfig& config) {
  qfs::Rng rng(config.seed);
  auto suite = workloads::make_suite(config.suite, rng);
  std::vector<SuiteRow> rows;
  rows.reserve(suite.size());
  int done = 0;
  for (const auto& b : suite) {
    SuiteRow row;
    row.name = b.name;
    row.family = b.family;
    row.profile = profile::profile_circuit(b.circuit);
    row.mapping = mapper::map_circuit(b.circuit, device, config.mapping, rng);
    rows.push_back(std::move(row));
    if (++done % 20 == 0) std::cerr << "." << std::flush;
  }
  std::cerr << "\n";
  return rows;
}

inline std::string fmt(double v, int precision = 3) {
  return qfs::format_double(v, precision);
}

/// Marker per family, following the paper's figures (squares = synthetic,
/// circles = real).
inline char family_marker(workloads::Family family) {
  switch (family) {
    case workloads::Family::kRandom: return 's';
    case workloads::Family::kReal: return 'o';
    case workloads::Family::kReversible: return 'r';
  }
  return '?';
}

}  // namespace qfs::bench
