// google-benchmark timings of the compilation stack's hot paths: routing,
// decomposition, scheduling, profiling and simulation throughput.
#include <benchmark/benchmark.h>

#include "compiler/decompose.h"
#include "compiler/schedule.h"
#include "device/device.h"
#include "device/fidelity.h"
#include "mapper/pipeline.h"
#include "mapper/placement.h"
#include "mapper/routing.h"
#include "profile/circuit_profile.h"
#include "sim/statevector.h"
#include "workloads/random_circuit.h"

namespace {

using namespace qfs;

circuit::Circuit make_workload(int qubits, int gates) {
  qfs::Rng rng(42);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = qubits;
  spec.num_gates = gates;
  spec.two_qubit_fraction = 0.35;
  return workloads::random_circuit(spec, rng);
}

void BM_DecomposeToSurfaceSet(benchmark::State& state) {
  circuit::Circuit c = make_workload(20, static_cast<int>(state.range(0)));
  device::GateSet gs = device::surface_code_gateset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::decompose_to_gateset(c, gs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecomposeToSurfaceSet)->Arg(1000)->Arg(10000);

void BM_TrivialRouteSurface97(benchmark::State& state) {
  device::Device d = device::surface97_device();
  circuit::Circuit c = compiler::decompose_to_gateset(
      make_workload(40, static_cast<int>(state.range(0))), d.gateset());
  for (auto _ : state) {
    qfs::Rng rng(1);
    auto result = mapper::TrivialRouter().route(
        c, d, mapper::Layout::identity(97), rng);
    benchmark::DoNotOptimize(result.swaps_inserted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrivialRouteSurface97)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LookaheadRouteSurface97(benchmark::State& state) {
  device::Device d = device::surface97_device();
  circuit::Circuit c = compiler::decompose_to_gateset(
      make_workload(40, static_cast<int>(state.range(0))), d.gateset());
  for (auto _ : state) {
    qfs::Rng rng(1);
    auto result = mapper::LookaheadRouter().route(
        c, d, mapper::Layout::identity(97), rng);
    benchmark::DoNotOptimize(result.swaps_inserted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
// The 100k-gate case guards the lookahead window's persistent cursor: with
// a from-zero rescan per call the router is quadratic and this arg takes
// minutes instead of seconds.
BENCHMARK(BM_LookaheadRouteSurface97)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FullMappingPipeline(benchmark::State& state) {
  device::Device d = device::surface97_device();
  circuit::Circuit c = make_workload(30, 2000);
  for (auto _ : state) {
    qfs::Rng rng(1);
    benchmark::DoNotOptimize(mapper::map_circuit(c, d, rng));
  }
}
BENCHMARK(BM_FullMappingPipeline);

void BM_AsapScheduleWithControlGroups(benchmark::State& state) {
  device::Device d = device::surface97_device();
  circuit::Circuit c = compiler::decompose_to_gateset(
      make_workload(40, static_cast<int>(state.range(0))), d.gateset());
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::asap_schedule(c, d));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AsapScheduleWithControlGroups)->Arg(1000)->Arg(5000);

void BM_ProfileCircuit(benchmark::State& state) {
  circuit::Circuit c = make_workload(static_cast<int>(state.range(0)), 5000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile::profile_circuit(c));
  }
}
BENCHMARK(BM_ProfileCircuit)->Arg(10)->Arg(50);

void BM_FidelityEstimate(benchmark::State& state) {
  device::Device d = device::surface97_device();
  circuit::Circuit c = compiler::decompose_to_gateset(
      make_workload(40, 10000), d.gateset());
  for (auto _ : state) {
    benchmark::DoNotOptimize(device::estimate_log_gate_fidelity(c, d));
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_FidelityEstimate);

void BM_StateVectorSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  circuit::Circuit c = make_workload(n, 200);
  for (auto _ : state) {
    sim::StateVector sv(n);
    sv.apply_circuit(c);
    benchmark::DoNotOptimize(sv.amplitude(0));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_StateVectorSimulation)->Arg(8)->Arg(12)->Arg(16);

void BM_AnnealingPlacer(benchmark::State& state) {
  device::Device d = device::surface97_device();
  circuit::Circuit c = make_workload(30, 500);
  for (auto _ : state) {
    qfs::Rng rng(1);
    benchmark::DoNotOptimize(
        mapper::AnnealingPlacer(2000).place(c, d, rng));
  }
}
BENCHMARK(BM_AnnealingPlacer);

}  // namespace
