// Table I reproduction: the interaction-graph metric catalogue and each
// metric's relation to quantum circuit mapping.
//
// Two parts:
//  1. the metric definitions evaluated on canonical graphs (sanity anchors
//     for every row of the table), and
//  2. the *signed relation* of each Table-I metric to gate overhead,
//     measured on the mapped benchmark suite — the "relation to quantum
//     mapping" column of the table.
#include <iostream>
#include <memory>

#include "common.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "report/table.h"
#include "stats/correlation.h"

using namespace qfs;

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  std::cout << "=== Table I: metrics for characterising interaction graphs "
               "===\n\n";

  // Part 1: definitions on canonical graphs.
  {
    report::TextTable t({"graph", "avg shortest path", "max deg", "min deg",
                         "adj. std dev", "clustering", "density"});
    auto add = [&t](const std::string& name, const graph::Graph& g) {
      auto deg = graph::degree_stats(g);
      t.add_row({name, bench::fmt(graph::average_shortest_path(g), 3),
                 std::to_string(deg.max), std::to_string(deg.min),
                 bench::fmt(graph::adjacency_matrix_stats(g).stddev, 3),
                 bench::fmt(graph::average_clustering(g), 3),
                 bench::fmt(graph::density(g), 3)});
    };
    add("path-8", graph::path_graph(8));
    add("ring-8", graph::cycle_graph(8));
    add("star-8", graph::star_graph(8));
    add("complete-8", graph::complete_graph(8));
    add("grid-3x3", graph::grid_graph(3, 3));
    std::cout << "Metric anchors on canonical graphs:\n"
              << t.to_string() << "\n";
  }

  // Part 2: relation to mapping (sign of correlation with gate overhead).
  device::Device dev = bench::resolve_device(flags, "surface97");
  bench::SuiteRunConfig config;
  config.jobs = flags.jobs;
  config.suite.max_gates = 3000;
  // Optional persistent compile cache: re-runs reuse every mapping.
  std::unique_ptr<cache::CompileCache> compile_cache;
  if (!flags.cache_dir.empty()) {
    compile_cache = std::make_unique<cache::CompileCache>(
        cache::CacheConfig{flags.cache_dir});
    config.cache = compile_cache.get();
  }
  std::cerr << "mapping 200 circuits ";
  auto rows = bench::run_suite(dev, config);
  bench::print_cache_summary(config);
  // Every mapped circuit must verify clean before any statistic is drawn
  // from it (exit 2 with the offending diagnostics otherwise).
  bench::verify_suite_rows(rows, dev);

  std::vector<double> overhead;
  std::vector<double> asp, maxdeg, mindeg, adjstd, closeness;
  for (const auto& r : rows) {
    if (r.profile.ig_nodes < 2) continue;
    overhead.push_back(r.mapping.gate_overhead_pct);
    asp.push_back(r.profile.avg_shortest_path);
    maxdeg.push_back(r.profile.max_degree);
    mindeg.push_back(r.profile.min_degree);
    adjstd.push_back(r.profile.adj_matrix_stddev);
    closeness.push_back(r.profile.avg_closeness);
  }

  report::TextTable t({"Table-I metric", "Spearman vs gate overhead",
                       "paper's stated relation", "shape"});
  struct Row {
    const char* metric;
    const std::vector<double>* values;
    bool expected_negative;
    const char* statement;
  };
  // Note: Table I merges "hopcount / closeness" into a single row whose
  // stated relation is keyed on hopcount (they are near-reciprocal); we do
  // the same and report closeness for reference only.
  const Row table[] = {
      {"avg shortest path (hopcount/closeness)", &asp, true,
       "large avg hopcount -> simpler to map (less overhead)"},
      {"max degree", &maxdeg, false,
       "higher max degree -> qubits interact more -> more overhead"},
      {"min degree", &mindeg, false,
       "higher min degree -> qubits interact more -> more overhead"},
      {"adjacency-matrix std dev", &adjstd, true,
       "bigger variance -> few dominant pairs -> less movement"},
  };
  bool all_hold = true;
  for (const Row& row : table) {
    double rho = stats::spearman(*row.values, overhead);
    bool holds = row.expected_negative ? (rho < 0.0) : (rho > 0.0);
    all_hold = all_hold && holds;
    t.add_row({row.metric, bench::fmt(rho, 3), row.statement,
               holds ? "HOLDS" : "VIOLATED"});
  }
  std::cout << "Measured relation to mapping on the suite ("
            << overhead.size() << " circuits, surface-97, trivial mapper):\n"
            << t.to_string() << "\n";
  std::cout << "(reference: Spearman(closeness, overhead) = "
            << bench::fmt(stats::spearman(closeness, overhead), 3)
            << "; closeness shares its Table-I row with hopcount)\n\n";
  std::cout << "All Table-I relation signs reproduced: "
            << (all_hold ? "YES" : "NO") << "\n";
  return 0;
}
