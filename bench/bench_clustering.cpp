// Sec. IV reproduction: clustering quantum algorithms by their
// interaction-graph metrics.
//
// "Using these new metrics and the common circuit parameters, algorithms
// can be clustered based on their similarities. Ideally, quantum algorithms
// with similar properties are ought to show similar performance when run on
// specific chips using a given mapping strategy."
//
// This bench clusters the suite in the reduced metric space and reports,
// per cluster, the spread of mapping performance — showing that clusters
// are more homogeneous in overhead than the suite as a whole.
#include <iostream>

#include "common.h"
#include "profile/clustering.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace qfs;

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  std::cout << "=== Sec. IV: clustering algorithms by graph metrics ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface97");
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.suite.max_gates = 3000;
  std::cerr << "mapping 200 circuits ";
  auto rows = bench::run_suite(dev, config);

  std::vector<profile::CircuitProfile> profiles;
  std::vector<double> overheads;
  std::vector<workloads::Family> families;
  for (const auto& r : rows) {
    if (r.profile.ig_nodes < 2) continue;
    profiles.push_back(r.profile);
    overheads.push_back(r.mapping.gate_overhead_pct);
    families.push_back(r.family);
  }

  const int k = 4;
  qfs::Rng rng(33);
  profile::ClusteringResult clusters =
      profile::cluster_profiles(profiles, k, rng, /*reduce_first=*/true);

  std::cout << "Feature space after Pearson reduction: ";
  for (int idx : clusters.feature_indices) {
    std::cout << profile::graph_metric_names()[static_cast<std::size_t>(idx)]
              << " ";
  }
  std::cout << "\nk-means: k = " << k << ", converged in "
            << clusters.kmeans.iterations << " iterations, inertia = "
            << bench::fmt(clusters.kmeans.inertia, 1) << "\n\n";

  report::TextTable t({"cluster", "circuits", "random", "real", "reversible",
                       "mean overhead %", "overhead std dev"});
  double pooled_var = 0.0;
  int pooled_n = 0;
  for (int c = 0; c < k; ++c) {
    std::vector<double> ov;
    int fam[3] = {0, 0, 0};
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      if (clusters.cluster_of_circuit[i] != c) continue;
      ov.push_back(overheads[i]);
      ++fam[static_cast<int>(families[i])];
    }
    double sd = stats::stddev(ov);
    pooled_var += sd * sd * static_cast<double>(ov.size());
    pooled_n += static_cast<int>(ov.size());
    t.add_row({std::to_string(c), std::to_string(ov.size()),
               std::to_string(fam[0]), std::to_string(fam[1]),
               std::to_string(fam[2]), bench::fmt(stats::mean(ov), 1),
               bench::fmt(sd, 1)});
  }
  std::cout << t.to_string() << "\n";

  double overall_sd = stats::stddev(overheads);
  double pooled_sd = pooled_n ? std::sqrt(pooled_var / pooled_n) : 0.0;
  std::cout << "Overhead std dev over the whole suite: "
            << bench::fmt(overall_sd, 1) << "\n";
  std::cout << "Pooled within-cluster overhead std dev: "
            << bench::fmt(pooled_sd, 1) << "\n";
  std::cout << "Clusters more homogeneous than the full suite: "
            << (pooled_sd < overall_sd ? "HOLDS" : "VIOLATED")
            << "  (the paper's premise for algorithm-driven mapping)\n";
  return 0;
}
