// Validation of the paper's success-rate metric.
//
// Fig. 3 computes circuit fidelity as the product of gate fidelities. This
// bench cross-checks that analytic estimate against Monte-Carlo
// depolarizing-noise trajectories on mapped circuits: the error-free shot
// fraction must track the analytic product, and the mean state fidelity
// bounds it from above (some Pauli errors act trivially on the state).
#include <cmath>
#include <iostream>

#include "common.h"
#include "device/fidelity.h"
#include "report/table.h"
#include "sim/density_matrix.h"
#include "sim/noisy.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

using namespace qfs;

int main() {
  std::cout << "=== Validation: analytic fidelity product vs Monte-Carlo "
               "trajectories ===\n\n";

  // Small device so mapped circuits stay simulable (<= 16 qubits).
  device::Device dev = device::surface7_device();

  struct Case {
    std::string label;
    circuit::Circuit circuit;
  };
  qfs::Rng gen(3);
  std::vector<Case> cases;
  cases.push_back({"ghz4", workloads::ghz(4)});
  cases.push_back({"qft4", workloads::qft(4)});
  cases.push_back({"wstate5", workloads::w_state(5)});
  for (int i = 0; i < 3; ++i) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 5;
    spec.num_gates = 40 + 40 * i;
    spec.two_qubit_fraction = 0.4;
    cases.push_back({"random" + std::to_string(i),
                     workloads::random_circuit(spec, gen)});
  }

  report::TextTable t({"circuit", "gates (mapped)", "analytic fidelity",
                       "MC error-free fraction", "MC state fidelity",
                       "DM exact fidelity", "|analytic - MC| / analytic"});
  bool all_close = true;
  for (auto& c : cases) {
    qfs::Rng rng(11);
    mapper::MappingResult r = mapper::map_circuit(c.circuit, dev, rng);
    double analytic = r.fidelity_after;
    qfs::Rng mc_rng(42);
    sim::NoisyRunResult mc = sim::run_noisy(r.mapped, dev.error_model(),
                                            mc_rng, {.shots = 2000});
    // Exact channel evolution (density matrix) — the quantity MC samples.
    double exact = sim::exact_noisy_fidelity(r.mapped, dev.error_model());
    double rel_err = std::abs(analytic - mc.error_free_fraction) /
                     std::max(analytic, 1e-12);
    // 2000 shots: expect agreement within a few std errors (~3%).
    bool close = rel_err < 0.15;
    // MC must also agree with the exact channel value.
    close = close && std::abs(mc.mean_state_fidelity - exact) < 0.05;
    all_close = all_close && close;
    t.add_row({c.label, std::to_string(r.gates_after), bench::fmt(analytic, 4),
               bench::fmt(mc.error_free_fraction, 4),
               bench::fmt(mc.mean_state_fidelity, 4), bench::fmt(exact, 4),
               bench::fmt(rel_err, 3)});
    if (mc.mean_state_fidelity + 0.02 < mc.error_free_fraction) {
      all_close = false;  // state fidelity must not undercut the bound
    }
  }
  std::cout << t.to_string() << "\n";
  std::cout << "Analytic product metric validated by trajectory sampling and "
               "exact channel evolution: "
            << (all_close ? "YES" : "NO") << "\n";
  std::cout << "(MC state fidelity >= error-free fraction because some "
               "injected Paulis leave the state invariant; the DM column is "
               "the exact value MC estimates.)\n";
  return 0;
}
