// Fig. 4 reproduction: interaction graphs of two circuits with identical
// size parameters — a real algorithm (QAOA) and a randomly generated
// circuit. The paper's point: the common parameters (qubits, gates,
// two-qubit %) hide a very different interaction structure; the random
// circuit's graph is denser (full connectivity) with flatter weights.
#include <iostream>

#include "common.h"
#include "compiler/decompose.h"
#include "device/gateset.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "profile/circuit_profile.h"
#include "profile/interaction.h"
#include "report/table.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

using namespace qfs;

namespace {

void print_weighted_graph(const graph::Graph& g, const std::string& title) {
  std::cout << title << " (" << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges)\n";
  for (const auto& e : g.edges()) {
    std::cout << "  q" << e.u << " -- q" << e.v << "  weight "
              << bench::fmt(e.weight, 0) << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Fig. 4: interaction graphs at identical size parameters "
               "===\n\n";

  // Real algorithm: QAOA-MaxCut on a 6-node ring, enough layers to get a
  // few hundred gates (the paper's instance: 6 qubits, 456 gates, 13.5 %
  // two-qubit share after compilation).
  qfs::Rng qaoa_rng(4);
  graph::Graph problem = graph::cycle_graph(6);
  circuit::Circuit qaoa = workloads::qaoa_maxcut(problem, 12, qaoa_rng);
  // Lower to the surface primitive set: this inflates the single-qubit gate
  // count exactly the way real compiled benchmarks do, dropping the
  // two-qubit share toward the paper's 13.5 %.
  circuit::Circuit qaoa_lowered =
      compiler::decompose_to_gateset(qaoa, device::surface_code_gateset());
  profile::CircuitProfile pq = profile::profile_circuit(qaoa_lowered);

  // Random circuit pinned to the same (qubits, gates, two-qubit %) triple.
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 6;
  spec.num_gates = pq.gate_count;
  spec.two_qubit_fraction = pq.two_qubit_fraction;
  qfs::Rng rand_rng(5);
  circuit::Circuit random = workloads::random_circuit(spec, rand_rng);
  profile::CircuitProfile pr = profile::profile_circuit(random);

  std::cout << "Shared size parameters: num qubits = " << pq.num_qubits
            << ", num gates = " << pq.gate_count
            << ", two-qubit gate share = "
            << bench::fmt(100.0 * pq.two_qubit_fraction, 1) << " %\n\n";

  print_weighted_graph(profile::active_interaction_graph(qaoa_lowered),
                       "QAOA (real algorithm) interaction graph");
  print_weighted_graph(profile::active_interaction_graph(random),
                       "Random circuit interaction graph");

  report::TextTable t({"metric", "QAOA (real)", "random"});
  auto row = [&t](const std::string& name, double a, double b, int prec) {
    t.add_row({name, bench::fmt(a, prec), bench::fmt(b, prec)});
  };
  row("interaction edges", pq.ig_edges, pr.ig_edges, 0);
  row("density (connectivity)", pq.density, pr.density, 3);
  row("avg shortest path", pq.avg_shortest_path, pr.avg_shortest_path, 3);
  row("max degree", pq.max_degree, pr.max_degree, 0);
  row("min degree", pq.min_degree, pr.min_degree, 0);
  row("edge-weight std dev", pq.edge_weight_stddev, pr.edge_weight_stddev, 3);
  row("adjacency-matrix std dev", pq.adj_matrix_stddev, pr.adj_matrix_stddev, 3);
  row("clustering coefficient", pq.clustering, pr.clustering, 3);
  std::cout << t.to_string() << "\n";

  bool denser = pr.density > pq.density;
  // "Different distribution of the interactions": the structured circuit
  // concentrates its two-qubit gates on few pairs (large adjacency-matrix
  // spread); the random circuit dilutes them over every pair.
  bool concentrated = pq.adj_matrix_stddev > pr.adj_matrix_stddev;
  std::cout << "Shape checks (paper's Fig. 4 observations):\n";
  std::cout << "  random graph denser / closer to full connectivity: "
            << (denser ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "  QAOA concentrates weight on few pairs (higher adjacency "
               "spread): "
            << (concentrated ? "HOLDS" : "VIOLATED") << "\n";
  return 0;
}
