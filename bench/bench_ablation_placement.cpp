// Ablation: initial placement. The paper argues for algorithm-driven
// mapping — using interaction-graph structure to drive compilation. The
// degree-match and annealing placers are exactly that: they read the
// interaction graph before choosing a layout. This bench measures their
// effect against the trivial (identity) and random baselines, with the
// router held fixed.
#include <iostream>

#include "common.h"
#include "report/table.h"
#include "stats/descriptive.h"

using namespace qfs;

int main(int argc, char** argv) {
  const service::RequestFlagValues flags = bench::request_flags(argc, argv);
  const int jobs = flags.jobs;
  std::cout << "=== Ablation: placement (surface-97, trivial router) ===\n\n";

  device::Device dev = bench::resolve_device(flags, "surface97");
  report::TextTable t({"placer", "mean overhead %", "median overhead %",
                       "mean swaps", "mean fidelity decrease %"});

  std::vector<std::pair<std::string, double>> means;
  for (const std::string placer : {"trivial", "random", "degree-match",
                                   "annealing", "subgraph", "noise-aware"}) {
    bench::SuiteRunConfig config;
    config.jobs = jobs;
    config.suite.random_count = 25;
    config.suite.real_count = 25;
    config.suite.reversible_count = 10;
    config.suite.max_gates = 1200;
    config.suite.max_qubits = 40;
    config.mapping.placer = placer;
    std::cerr << placer << " ";
    auto rows = bench::run_suite(dev, config);

    std::vector<double> overhead, swaps, fdec;
    for (const auto& r : rows) {
      overhead.push_back(r.mapping.gate_overhead_pct);
      swaps.push_back(r.mapping.swaps_inserted);
      fdec.push_back(r.mapping.fidelity_decrease_pct);
    }
    t.add_row({placer, bench::fmt(stats::mean(overhead), 1),
               bench::fmt(stats::median(overhead), 1),
               bench::fmt(stats::mean(swaps), 1),
               bench::fmt(stats::mean(fdec), 1)});
    means.emplace_back(placer, stats::mean(overhead));
  }
  std::cout << t.to_string() << "\n";

  double trivial = means[0].second;
  double annealing = means[3].second;
  double subgraph = means[4].second;
  std::cout << "Exact-embedding (subgraph) placement beats the trivial "
               "baseline: "
            << (subgraph < trivial ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "Algorithm-driven (annealing) placement beats the trivial "
               "baseline: "
            << (annealing < trivial ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "This is the paper's central claim: exploiting interaction-"
               "graph structure reduces mapping overhead.\n";
  return 0;
}
