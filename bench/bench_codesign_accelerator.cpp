// Co-design demonstration: application-specific accelerator selection.
//
// The paper's conclusion: "near-term quantum computing full-stacks ... are
// expected to be in the form of application-specific quantum accelerators"
// and "algorithm-driven devices could be an effective solution". This
// bench makes that concrete: for each algorithm family, the same qubit
// budget is spent on different chip topologies, and the best chip differs
// per family — structure-matched connectivity wins.
#include <iostream>

#include "common.h"
#include "device/synthesis.h"
#include "graph/generators.h"
#include "profile/interaction.h"
#include "report/table.h"
#include "stats/descriptive.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

using namespace qfs;

namespace {

struct Chip {
  std::string label;
  device::Device device;
};

struct Workload {
  std::string label;
  std::vector<circuit::Circuit> instances;
};

double mean_overhead(const Workload& w, device::Device& dev) {
  std::vector<double> overhead;
  for (const auto& c : w.instances) {
    mapper::MappingOptions opts;
    opts.placer = "annealing";  // algorithm-driven placement throughout
    qfs::Rng rng(7);
    overhead.push_back(mapper::map_circuit(c, dev, opts, rng).gate_overhead_pct);
  }
  return stats::mean(overhead);
}

}  // namespace

int main() {
  std::cout << "=== Co-design: picking the accelerator topology per "
               "application ===\n";
  std::cout << "~20-qubit chips, annealing placement, trivial router\n\n";

  std::vector<Chip> chips;
  chips.push_back({"line-20", device::line_device(20)});
  chips.push_back({"grid-4x5", device::grid_device(4, 5)});
  chips.push_back({"surface-17", device::surface17_device()});
  // A chip synthesised from a representative workload of each family is
  // evaluated separately below ("synthesized" column): the ultimate
  // algorithm-driven device.

  qfs::Rng gen(2022);
  std::vector<Workload> workloads;
  {
    Workload w{"GHZ chains (line-structured)", {}};
    for (int n : {10, 13, 16}) w.instances.push_back(workloads::ghz(n));
    workloads.push_back(std::move(w));
  }
  {
    Workload w{"QAOA ring MaxCut (ring-structured)", {}};
    for (int n : {10, 12, 14}) {
      w.instances.push_back(
          workloads::qaoa_maxcut(graph::cycle_graph(n), 2, gen));
    }
    workloads.push_back(std::move(w));
  }
  {
    Workload w{"QFT (all-to-all)", {}};
    for (int n : {8, 10, 12}) w.instances.push_back(workloads::qft(n));
    workloads.push_back(std::move(w));
  }
  {
    Workload w{"dense random (unstructured)", {}};
    for (int i = 0; i < 3; ++i) {
      workloads::RandomCircuitSpec spec;
      spec.num_qubits = 12;
      spec.num_gates = 200;
      spec.two_qubit_fraction = 0.5;
      w.instances.push_back(workloads::random_circuit(spec, gen));
    }
    workloads.push_back(std::move(w));
  }

  std::vector<std::string> headers = {"application"};
  for (const auto& chip : chips) headers.push_back(chip.label);
  headers.push_back("synthesized");
  headers.push_back("best chip");
  report::TextTable t(headers);

  std::vector<std::string> winners;
  std::vector<double> synth_overheads;
  for (auto& w : workloads) {
    std::vector<std::string> row = {w.label};
    double best = 1e300;
    std::string best_chip;
    for (auto& chip : chips) {
      double overhead = mean_overhead(w, chip.device);
      row.push_back(bench::fmt(overhead, 1));
      if (overhead < best) {
        best = overhead;
        best_chip = chip.label;
      }
    }
    // The algorithm-driven extreme: a chip synthesised from this family's
    // first instance's interaction graph (degree budget 4).
    graph::Graph ig = profile::interaction_graph(w.instances[0]);
    ig.ensure_nodes(20);  // same qubit budget as the generic chips
    device::Device synth("synth", device::synthesize_topology(ig),
                         device::surface_code_gateset(), device::ErrorModel());
    double synth_overhead = mean_overhead(w, synth);
    synth_overheads.push_back(synth_overhead);
    row.push_back(bench::fmt(synth_overhead, 1));
    if (synth_overhead < best) {
      best = synth_overhead;
      best_chip = "synthesized";
    }
    row.push_back(best_chip);
    winners.push_back(best_chip);
    t.add_row(row);
  }
  std::cout << t.to_string() << "\n";

  bool structure_matters = false;
  for (std::size_t i = 1; i < winners.size(); ++i) {
    if (winners[i] != winners[0]) structure_matters = true;
  }
  std::cout << "Different applications prefer different topologies "
               "(application-specific accelerators pay off): "
            << (structure_matters ? "HOLDS" : "VIOLATED") << "\n";
  std::cout << "Line-structured GHZ maps overhead-free on the line chip; "
               "denser workloads need richer connectivity.\n";
  return 0;
}
