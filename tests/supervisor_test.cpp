// Fault-tolerance tier tests: the pure backoff schedule and circuit-breaker
// state machine (injected clock, no sleeps), the Supervisor against /bin/sh
// fake workers (crash, hang, restart storm), and the retrying Client
// against a real in-process server.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <string>
#include <vector>

#include "service/client.h"
#include "service/server.h"
#include "service/supervisor.h"
#include "support/json.h"

namespace qfs::service {
namespace {

const char* kBellQasm =
    "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";

// ---------------------------------------------------------------------------
// Backoff schedule (pure).
// ---------------------------------------------------------------------------

TEST(BackoffTest, PureSameInputsSameDelay) {
  BackoffPolicy policy;
  for (int attempt = 0; attempt < 12; ++attempt) {
    EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, attempt, 7),
                     backoff_delay_ms(policy, attempt, 7));
  }
}

TEST(BackoffTest, ExponentialGrowthStaysInsideJitterBounds) {
  BackoffPolicy policy;  // 25 ms * 2^n, clamp 2000, +-25%
  for (int attempt = 0; attempt < 12; ++attempt) {
    double base =
        std::min(policy.max_ms,
                 policy.initial_ms * std::pow(policy.multiplier, attempt));
    double delay = backoff_delay_ms(policy, attempt, 2022);
    EXPECT_GE(delay, base * (1.0 - policy.jitter)) << "attempt " << attempt;
    EXPECT_LE(delay, base * (1.0 + policy.jitter)) << "attempt " << attempt;
  }
}

TEST(BackoffTest, ZeroJitterIsTheExactSchedule) {
  BackoffPolicy policy;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 0, 1), 25.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 1, 1), 50.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 2, 99), 100.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 6, 99), 1600.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 7, 99), 2000.0);   // clamp
  EXPECT_DOUBLE_EQ(backoff_delay_ms(policy, 40, 99), 2000.0);  // no overflow
}

TEST(BackoffTest, JitterVariesAcrossSeeds) {
  BackoffPolicy policy;
  // Not a tautology: with jitter from a 53-bit fold of derive_seed, two
  // distinct seeds colliding on every attempt would be a broken fold.
  bool any_differ = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (backoff_delay_ms(policy, attempt, 1) !=
        backoff_delay_ms(policy, attempt, 2)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

// ---------------------------------------------------------------------------
// Circuit breaker (pure state machine, injected clock).
// ---------------------------------------------------------------------------

BreakerConfig small_breaker() {
  BreakerConfig config;
  config.max_restarts = 3;
  config.window_ms = 1000.0;
  config.cooldown_ms = 500.0;
  return config;
}

TEST(CircuitBreakerTest, StaysClosedAtTheLimit) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_restart(0.0);
  breaker.record_restart(10.0);
  breaker.record_restart(20.0);  // exactly max_restarts: tolerated
  EXPECT_EQ(breaker.restarts_in_window(30.0), 3);
  EXPECT_FALSE(breaker.open(30.0));
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, OneMoreRestartTrips) {
  CircuitBreaker breaker(small_breaker());
  for (double t : {0.0, 10.0, 20.0, 40.0}) breaker.record_restart(t);
  EXPECT_TRUE(breaker.open(41.0));
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, StaysOpenThroughCooldownAndSaturatedWindow) {
  CircuitBreaker breaker(small_breaker());
  for (double t : {0.0, 10.0, 20.0, 40.0}) breaker.record_restart(t);
  // Cooldown runs until 40 + 500 = 540.
  EXPECT_TRUE(breaker.open(539.0));
  // Cooldown over, but all four restarts are still inside the 1000 ms
  // window: stay open rather than flap.
  EXPECT_TRUE(breaker.open(600.0));
  // At 1041 the window (now - 1000) has drained every restart: recover.
  EXPECT_FALSE(breaker.open(1041.0));
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, RestartsWhileOpenExtendTheQuietPeriod) {
  CircuitBreaker breaker(small_breaker());
  for (double t : {0.0, 10.0, 20.0, 40.0}) breaker.record_restart(t);
  breaker.record_restart(300.0);  // still open: pushes open_until to 800
  EXPECT_TRUE(breaker.open(700.0));
  EXPECT_EQ(breaker.trips(), 1u);  // an extension is not a new trip
  EXPECT_FALSE(breaker.open(1500.0));
}

TEST(CircuitBreakerTest, OldRestartsFallOutOfTheWindow) {
  CircuitBreaker breaker(small_breaker());
  breaker.record_restart(0.0);
  breaker.record_restart(10.0);
  EXPECT_EQ(breaker.restarts_in_window(1500.0), 0);
  // Slow-drip restarts spaced past the window never accumulate.
  for (double t = 2000.0; t < 10000.0; t += 1100.0) {
    breaker.record_restart(t);
    EXPECT_FALSE(breaker.open(t + 1.0));
  }
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, CanTripAgainAfterRecovery) {
  CircuitBreaker breaker(small_breaker());
  for (double t : {0.0, 10.0, 20.0, 40.0}) breaker.record_restart(t);
  EXPECT_TRUE(breaker.open(41.0));
  EXPECT_FALSE(breaker.open(2000.0));  // recovered
  for (double t : {3000.0, 3010.0, 3020.0, 3040.0}) breaker.record_restart(t);
  EXPECT_TRUE(breaker.open(3041.0));
  EXPECT_EQ(breaker.trips(), 2u);
}

// ---------------------------------------------------------------------------
// Supervisor against /bin/sh fake workers. The wire is the real one (line-
// delimited JSON over the socketpair); only the worker binary is fake.
// ---------------------------------------------------------------------------

SupervisorConfig sh_worker(const std::string& script) {
  SupervisorConfig config;
  config.command = {"/bin/sh", "-c", script};
  config.workers = 1;
  // Fast, deterministic-enough restarts for tests.
  config.backoff = BackoffPolicy{1.0, 2.0, 5.0, 0.0};
  return config;
}

CompileRequest bell_request(const std::string& id) {
  CompileRequest request;
  request.id = id;
  request.qasm = kBellQasm;
  return request;
}

TEST(SupervisorTest, EmptyCommandIsAStartError) {
  Supervisor supervisor(SupervisorConfig{});
  EXPECT_FALSE(supervisor.start().is_ok());
}

TEST(SupervisorTest, EchoWorkerRoundTripRewritesTheId) {
  // A worker that answers every request line with a canned ok response.
  Supervisor supervisor(sh_worker(
      "while read line; do echo '{\"id\":\"stale\",\"code\":\"ok\"}'; done"));
  ASSERT_TRUE(supervisor.start().is_ok());
  CompileResponse response = supervisor.execute(bell_request("mine"), -1.0);
  EXPECT_EQ(response.code, ErrorCode::kOk);
  // The socketpair is a trusted 1:1 channel: the supervisor stamps the
  // request id onto whatever the worker returned.
  EXPECT_EQ(response.id, "mine");
  SupervisorCounters counters = supervisor.counters();
  EXPECT_EQ(counters.requests, 1u);
  EXPECT_EQ(counters.crashes, 0u);
  supervisor.shutdown();
}

TEST(SupervisorTest, WorkerCrashMidRequestIsTypedInternal) {
  Supervisor supervisor(sh_worker("read line; exit 7"));
  ASSERT_TRUE(supervisor.start().is_ok());
  CompileResponse response = supervisor.execute(bell_request("c-1"), -1.0);
  EXPECT_EQ(response.code, ErrorCode::kInternal);
  EXPECT_EQ(response.id, "c-1");
  EXPECT_NE(response.error_message.find("worker died"), std::string::npos);
  EXPECT_GE(supervisor.counters().crashes, 1u);
  supervisor.shutdown();
}

TEST(SupervisorTest, HungWorkerIsKilledByTheDeadlineWatchdog) {
  Supervisor supervisor(sh_worker("read line; sleep 30"));
  ASSERT_TRUE(supervisor.start().is_ok());
  CompileResponse response = supervisor.execute(bell_request("h-1"), 150.0);
  EXPECT_EQ(response.code, ErrorCode::kDeadlineExceeded);
  EXPECT_NE(response.error_message.find("watchdog"), std::string::npos);
  EXPECT_EQ(supervisor.counters().hung_killed, 1u);
  supervisor.shutdown();
}

TEST(SupervisorTest, MalformedWorkerOutputIsTypedInternal) {
  Supervisor supervisor(
      sh_worker("while read line; do echo not-json; done"));
  ASSERT_TRUE(supervisor.start().is_ok());
  CompileResponse response = supervisor.execute(bell_request("m-1"), -1.0);
  EXPECT_EQ(response.code, ErrorCode::kInternal);
  EXPECT_GE(supervisor.counters().crashes, 1u);  // killed + restarted
  supervisor.shutdown();
}

TEST(SupervisorTest, RestartStormTripsTheBreakerAndSheds) {
  SupervisorConfig config = sh_worker("exit 3");  // dies before serving
  config.breaker.max_restarts = 2;
  config.breaker.window_ms = 60'000.0;   // nothing drains mid-test
  config.breaker.cooldown_ms = 60'000.0;
  ASSERT_TRUE(Supervisor(config).start().is_ok());  // instant death != error

  Supervisor supervisor(config);
  ASSERT_TRUE(supervisor.start().is_ok());
  // Every spawn dies immediately. Each execute() burns one worker and comes
  // back as a typed `internal` (the client's cue to retry); once the deaths
  // exceed max_restarts the breaker opens and execute() sheds with
  // `resource_exhausted` instead of feeding the storm.
  CompileResponse response;
  for (int i = 0; i < 50; ++i) {
    response = supervisor.execute(bell_request("s-" + std::to_string(i)),
                                  2000.0);
    if (response.code == ErrorCode::kResourceExhausted) break;
    EXPECT_EQ(response.code, ErrorCode::kInternal);
  }
  EXPECT_EQ(response.code, ErrorCode::kResourceExhausted);
  SupervisorCounters counters = supervisor.counters();
  EXPECT_GE(counters.crashes, 3u);
  EXPECT_GE(counters.breaker_trips, 1u);
  EXPECT_GE(counters.shed, 1u);
  EXPECT_TRUE(supervisor.breaker_open());
  supervisor.shutdown();
}

// ---------------------------------------------------------------------------
// Retrying client.
// ---------------------------------------------------------------------------

RetryPolicy fast_retry(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.backoff = BackoffPolicy{1.0, 2.0, 4.0, 0.0};
  return policy;
}

TEST(ClientRetryTest, ConnectFailureRetriesThenSynthesizesInternal) {
  Client client("unix:/nonexistent/qfsd.sock", fast_retry(3));
  RetryStats stats;
  CompileResponse response = client.call(bell_request("r-1"), &stats);
  EXPECT_EQ(response.code, ErrorCode::kInternal);
  EXPECT_TRUE(stats.gave_up);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.connect_failures, 3);
  // A locally synthesized response has no wire line behind it.
  EXPECT_TRUE(client.last_response_line().empty());
}

TEST(ClientRetryTest, RetriesNeverOutliveTheDeadline) {
  RetryPolicy policy = fast_retry(100);
  policy.backoff = BackoffPolicy{50.0, 2.0, 200.0, 0.0};
  Client client("unix:/nonexistent/qfsd.sock", policy);
  CompileRequest request = bell_request("d-1");
  request.deadline_ms = 120.0;  // overall budget from the first attempt
  RetryStats stats;
  CompileResponse response = client.call(request, &stats);
  EXPECT_EQ(response.code, ErrorCode::kDeadlineExceeded);
  // 100 attempts with 50+ ms backoffs cannot fit in a 120 ms budget.
  EXPECT_LT(stats.attempts, 5);
}

class ClientServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig config;
    config.listen = "tcp:0";
    config.workers = 2;
    server_ = std::make_unique<Server>(std::move(config));
    qfs::Status status = server_->start();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }

  void TearDown() override {
    server_->shutdown();
    server_->wait();
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ClientServerTest, HappyPathIsASingleAttempt) {
  Client client(server_->endpoint(), fast_retry(4));
  RetryStats stats;
  CompileResponse response = client.call(bell_request("ok-1"), &stats);
  EXPECT_EQ(response.code, ErrorCode::kOk);
  EXPECT_EQ(response.id, "ok-1");
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_FALSE(stats.gave_up);
  EXPECT_FALSE(client.last_response_line().empty());
}

TEST_F(ClientServerTest, DeterministicFailuresAreNotRetried) {
  Client client(server_->endpoint(), fast_retry(4));
  CompileRequest request = bell_request("p-1");
  request.qasm = "qreg q[1]; bogus q[0];";
  RetryStats stats;
  CompileResponse response = client.call(request, &stats);
  EXPECT_EQ(response.code, ErrorCode::kParseError);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
}

TEST_F(ClientServerTest, ControlOpsRoundTrip) {
  Client client(server_->endpoint());
  auto pong = client.op("ping");
  ASSERT_TRUE(pong.is_ok()) << pong.status().to_string();
  EXPECT_TRUE(pong.value().find("ok")->as_bool());
  auto stats = client.op("stats");
  ASSERT_TRUE(stats.is_ok());
  ASSERT_NE(stats.value().find("server"), nullptr);
}

TEST_F(ClientServerTest, RetryGenerationIsCountedByTheServer) {
  // Client::call owns the attempt field, so fake a retry on the raw wire:
  // a request arriving with attempt > 0 is a resend the server should count.
  CompileRequest request = bell_request("a-1");
  request.attempt = 2;
  std::string error;
  int fd = connect_endpoint(server_->endpoint(), error);
  ASSERT_GE(fd, 0) << error;
  ASSERT_TRUE(send_all(fd, request_to_json(request).to_string() + "\n"));
  LineReader reader(fd);
  std::string line;
  ASSERT_TRUE(reader.next(line));
  auto decoded = JsonValue::parse(line);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().find("code")->as_string(), "ok");
  ::close(fd);

  Client client(server_->endpoint());
  auto stats = client.op("stats");
  ASSERT_TRUE(stats.is_ok());
  const JsonValue* server = stats.value().find("server");
  ASSERT_NE(server, nullptr);
  const JsonValue* retries = server->find("retries_observed");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->as_integer(), 1);
}

}  // namespace
}  // namespace qfs::service
