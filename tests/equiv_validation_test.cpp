// Suite-wide translation-validation gate: every circuit of the paper's
// 200-circuit benchmark suite, compiled with the lookahead-heavy
// configuration, must validate clean under analysis/equiv.h — in both the
// flat and the legacy IR mode. A false rejection here means the validator
// (not the compiler) is wrong; a real rejection means the compiler shipped
// a broken artifact. Either way this test is the tripwire.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/equiv.h"
#include "backends/registry.h"
#include "circuit/flat.h"
#include "device/device.h"
#include "mapper/pipeline.h"
#include "support/rng.h"
#include "workloads/suite.h"

namespace qfs::analysis {
namespace {

class ScopedIrMode {
 public:
  explicit ScopedIrMode(circuit::IrMode mode) {
    circuit::set_ir_mode_for_testing(mode);
  }
  ~ScopedIrMode() { circuit::set_ir_mode_for_testing(circuit::IrMode::kFlat); }
};

/// Compile every suite circuit and validate the artifact; returns the
/// rendered findings of the first failure ("" = all clean).
std::string validate_suite(const device::Device& device,
                           const workloads::SuiteOptions& suite_options,
                           const mapper::MappingOptions& mapping,
                           std::uint64_t seed) {
  qfs::Rng suite_rng(seed);
  std::vector<workloads::Benchmark> suite =
      workloads::make_suite(suite_options, suite_rng);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    qfs::Rng rng(qfs::derive_seed(seed, i));
    mapper::MappingResult result =
        mapper::map_circuit(suite[i].circuit, device, mapping, rng);
    TranslationArtifact artifact;
    artifact.mapped = &result.mapped;
    artifact.initial_layout = result.initial_layout;
    artifact.final_layout = result.final_layout;
    artifact.swaps_inserted = result.swaps_inserted;
    std::vector<Diagnostic> findings =
        validate_translation(suite[i].circuit, device, artifact);
    if (!findings.empty()) {
      return suite[i].name + ":\n" + render_diagnostics(findings);
    }
  }
  return "";
}

workloads::SuiteOptions paper_suite_capped() {
  // The paper's 200-circuit mix (80 random / 80 real / 40 reversible),
  // sized for surface-17 like the suite-equivalence pin in flat_ir_test.
  workloads::SuiteOptions options;
  options.max_qubits = 17;
  options.max_gates = 800;
  return options;
}

mapper::MappingOptions lookahead_config() {
  mapper::MappingOptions mapping;
  mapping.placer = "degree-match";
  mapping.router = "lookahead";
  mapping.sabre_refinement_rounds = 1;
  return mapping;
}

TEST(EquivValidation, PaperSuiteValidatesCleanUnderFlatIr) {
  ScopedIrMode mode(circuit::IrMode::kFlat);
  std::string failure =
      validate_suite(device::surface17_device(), paper_suite_capped(),
                     lookahead_config(), 2022);
  EXPECT_EQ(failure, "");
}

TEST(EquivValidation, PaperSuiteValidatesCleanUnderLegacyIr) {
  ScopedIrMode mode(circuit::IrMode::kLegacy);
  std::string failure =
      validate_suite(device::surface17_device(), paper_suite_capped(),
                     lookahead_config(), 2022);
  EXPECT_EQ(failure, "");
}

TEST(EquivValidation, LargeDeviceSubsetValidatesCleanBothModes) {
  // A smaller draw at full paper width (up to 54 qubits) on surface-97,
  // covering layouts with many padding qubits and long swap chains.
  workloads::SuiteOptions options;
  options.random_count = 8;
  options.real_count = 8;
  options.reversible_count = 4;
  options.max_qubits = 54;
  options.max_gates = 2000;
  {
    ScopedIrMode mode(circuit::IrMode::kFlat);
    EXPECT_EQ(validate_suite(device::surface97_device(), options,
                             lookahead_config(), 7),
              "");
  }
  {
    ScopedIrMode mode(circuit::IrMode::kLegacy);
    EXPECT_EQ(validate_suite(device::surface97_device(), options,
                             lookahead_config(), 7),
              "");
  }
}

TEST(EquivValidation, HeavyHexSuiteValidatesClean) {
  // Degree-<=3 connectivity exercises the longest swap chains the validator
  // sees; the IBM basis exercises the {rz,sx,x,cx} lowering path.
  auto dev = backends::make_device("heavy_hex(rows=3,cols=9)");
  ASSERT_TRUE(dev.is_ok());
  workloads::SuiteOptions options;
  options.random_count = 10;
  options.real_count = 10;
  options.reversible_count = 5;
  options.max_qubits = 17;
  options.max_gates = 600;
  EXPECT_EQ(validate_suite(dev.value(), options, lookahead_config(), 2022),
            "");
}

TEST(EquivValidation, TrappedIonSuiteValidatesClean) {
  // All-to-all coupling: routing degenerates to placement only (zero
  // swaps), the opposite extreme from heavy-hex. Validates the MS/GPI
  // lowering and the permutation bookkeeping when layouts never move.
  auto dev = backends::make_device("trapped_ion(ions=20)");
  ASSERT_TRUE(dev.is_ok());
  workloads::SuiteOptions options;
  options.random_count = 10;
  options.real_count = 10;
  options.reversible_count = 5;
  options.max_qubits = 17;
  options.max_gates = 600;
  EXPECT_EQ(validate_suite(dev.value(), options, lookahead_config(), 2022),
            "");
}

TEST(EquivValidation, EveryRouterValidatesOnRepresentativeCircuits) {
  // The validator must understand each router's emission style: trivial
  // (swap chains), lookahead, noise-aware, bridge (4-CX bridges), optimal
  // (exhaustive per-slice permutations).
  workloads::SuiteOptions options;
  options.random_count = 3;
  options.real_count = 3;
  options.reversible_count = 2;
  options.max_qubits = 8;
  options.max_gates = 200;
  for (const char* router : {"trivial", "lookahead", "noise-aware", "bridge"}) {
    mapper::MappingOptions mapping;
    mapping.placer = "degree-match";
    mapping.router = router;
    EXPECT_EQ(validate_suite(device::surface17_device(), options, mapping, 11),
              "")
        << "router " << router;
  }
  // The optimal router searches permutations exhaustively per slice, so it
  // only gets toy inputs (the same regime its own tests run it in).
  {
    workloads::SuiteOptions tiny;
    tiny.random_count = 2;
    tiny.real_count = 2;
    tiny.reversible_count = 1;
    tiny.min_qubits = 2;
    tiny.max_qubits = 4;
    tiny.min_gates = 5;
    tiny.max_gates = 40;
    mapper::MappingOptions mapping;
    mapping.placer = "degree-match";
    mapping.router = "optimal";
    EXPECT_EQ(validate_suite(device::line_device(4), tiny, mapping, 11), "")
        << "router optimal";
  }
}

}  // namespace
}  // namespace qfs::analysis
