#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "compiler/decompose.h"
#include "graph/generators.h"
#include "mapper/layout.h"
#include "mapper/optimal.h"
#include "mapper/recommend.h"
#include "mapper/pipeline.h"
#include "mapper/placement.h"
#include "mapper/routing.h"
#include "sim/equivalence.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

namespace qfs::mapper {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using device::Device;

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

TEST(Layout, IdentityRoundTrip) {
  Layout l = Layout::identity(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(l.physical(i), i);
    EXPECT_EQ(l.virtual_qubit(i), i);
  }
}

TEST(Layout, FromPartialPadsRemaining) {
  Layout l = Layout::from_partial({3, 1}, 4);
  EXPECT_EQ(l.physical(0), 3);
  EXPECT_EQ(l.physical(1), 1);
  // Padding virtuals 2,3 take free physicals 0,2 in order.
  EXPECT_EQ(l.physical(2), 0);
  EXPECT_EQ(l.physical(3), 2);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(l.physical(l.virtual_qubit(p)), p);
  }
}

TEST(Layout, FromPartialValidates) {
  EXPECT_THROW(Layout::from_partial({0, 0}, 3), AssertionError);
  EXPECT_THROW(Layout::from_partial({5}, 3), AssertionError);
  EXPECT_THROW(Layout::from_partial({0, 1, 2, 3}, 3), AssertionError);
}

TEST(Layout, ApplySwapExchangesContents) {
  Layout l = Layout::identity(3);
  l.apply_swap(0, 2);
  EXPECT_EQ(l.physical(0), 2);
  EXPECT_EQ(l.physical(2), 0);
  EXPECT_EQ(l.virtual_qubit(0), 2);
  EXPECT_EQ(l.virtual_qubit(2), 0);
  EXPECT_EQ(l.physical(1), 1);
}

TEST(Layout, SwapSelfIsContractViolation) {
  Layout l = Layout::identity(2);
  EXPECT_THROW(l.apply_swap(1, 1), AssertionError);
}

TEST(Layout, InitialSegment) {
  Layout l = Layout::from_partial({2, 0}, 3);
  auto seg = l.initial_segment(2);
  EXPECT_EQ(seg, (std::vector<int>{2, 0}));
}

// ---------------------------------------------------------------------------
// Placers
// ---------------------------------------------------------------------------

TEST(Placement, TrivialIsIdentity) {
  Device d = device::surface17_device();
  Circuit c = workloads::ghz(5);
  qfs::Rng rng(1);
  Layout l = TrivialPlacer().place(c, d, rng);
  for (int i = 0; i < 17; ++i) EXPECT_EQ(l.physical(i), i);
}

TEST(Placement, RandomIsValidPermutation) {
  Device d = device::surface17_device();
  Circuit c = workloads::ghz(10);
  qfs::Rng rng(2);
  Layout l = RandomPlacer().place(c, d, rng);
  std::vector<bool> seen(17, false);
  for (int v = 0; v < 17; ++v) {
    int p = l.physical(v);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 17);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }
}

TEST(Placement, DegreeMatchPutsBusiestVirtualOnHighDegreePhysical) {
  Device d = device::surface17_device();
  // Star-shaped interaction: virtual 0 interacts with everyone.
  Circuit c(5);
  for (int i = 1; i < 5; ++i) c.cx(0, i);
  qfs::Rng rng(3);
  Layout l = DegreeMatchPlacer().place(c, d, rng);
  int p0 = l.physical(0);
  // Virtual 0 must land on a degree-4 site (the max on surface-17).
  EXPECT_EQ(d.topology().coupling().degree(p0), 4);
}

TEST(Placement, AnnealingNeverWorseThanCostOfDegreeMatch) {
  Device d = device::surface17_device();
  qfs::Rng rng(4);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 10;
  spec.num_gates = 60;
  spec.two_qubit_fraction = 0.5;
  Circuit c = workloads::random_circuit(spec, rng);
  qfs::Rng r1(7), r2(7);
  Layout dm = DegreeMatchPlacer().place(c, d, r1);
  Layout an = AnnealingPlacer(5000).place(c, d, r2);
  EXPECT_LE(AnnealingPlacer::placement_cost(c, d, an),
            AnnealingPlacer::placement_cost(c, d, dm));
}

TEST(Placement, AnnealingSolvesPerfectlyEmbeddableCircuit) {
  // A line-interaction circuit on a line device can reach cost 0.
  Device d = device::line_device(6);
  Circuit c(6);
  for (int i = 0; i + 1 < 6; ++i) c.cz(i, i + 1);
  qfs::Rng rng(5);
  Layout l = AnnealingPlacer(20000).place(c, d, rng);
  EXPECT_DOUBLE_EQ(AnnealingPlacer::placement_cost(c, d, l), 0.0);
}

TEST(Placement, SubgraphEmbedsLineIntoSurface) {
  // A GHZ chain's interaction graph (a path) embeds into any connected
  // coupling graph, so the subgraph placer must deliver a zero-swap layout.
  Device d = device::surface17_device();
  Circuit c = workloads::ghz(8);
  qfs::Rng rng(41);
  Layout l = SubgraphPlacer().place(c, d, rng);
  for (int i = 0; i + 1 < 8; ++i) {
    EXPECT_TRUE(d.topology().adjacent(l.physical(i), l.physical(i + 1)))
        << "pair " << i;
  }
}

TEST(Placement, SubgraphFindEmbeddingExactCases) {
  graph::Graph path = graph::path_graph(4);
  graph::Graph host = device::surface7().coupling();
  auto embedding = SubgraphPlacer::find_embedding(path, host, 100000);
  ASSERT_EQ(embedding.size(), 4u);
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_TRUE(host.has_edge(embedding[static_cast<std::size_t>(i)],
                              embedding[static_cast<std::size_t>(i + 1)]));
  }
}

TEST(Placement, SubgraphRejectsImpossiblePattern) {
  // K5 cannot embed into a degree-<=4 planar lattice section like
  // surface-7 (needs 5 mutually coupled qubits).
  graph::Graph k5 = graph::complete_graph(5);
  auto embedding =
      SubgraphPlacer::find_embedding(k5, device::surface7().coupling(), 100000);
  EXPECT_TRUE(embedding.empty());
}

TEST(Placement, SubgraphFallsBackGracefully) {
  // QFT's interaction graph is complete: not embeddable, so the placer
  // falls back to annealing and must still produce a valid layout.
  Device d = device::surface17_device();
  Circuit c = workloads::qft(6);
  qfs::Rng rng(43);
  Layout l = SubgraphPlacer().place(c, d, rng);
  std::vector<bool> seen(17, false);
  for (int v = 0; v < 17; ++v) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(l.physical(v))]);
    seen[static_cast<std::size_t>(l.physical(v))] = true;
  }
}

TEST(Placement, SubgraphZeroSwapsEndToEnd) {
  Device d = device::surface97_device();
  Circuit c = workloads::ghz(20);
  MappingOptions opts;
  opts.placer = "subgraph";
  qfs::Rng rng(44);
  MappingResult r = map_circuit(c, d, opts, rng);
  EXPECT_EQ(r.swaps_inserted, 0);
  EXPECT_DOUBLE_EQ(r.gate_overhead_pct, 0.0);
}

TEST(Placement, NoiseAwareAvoidsBadRegion) {
  // Line of 6; qubits 0-2 have terrible edges, 3-5 are clean. A 3-qubit
  // chain circuit must be placed on the clean half.
  Device d = device::line_device(6);
  d.mutable_error_model().set_edge_fidelity(0, 1, 0.5);
  d.mutable_error_model().set_edge_fidelity(1, 2, 0.5);
  d.mutable_error_model().set_edge_fidelity(2, 3, 0.5);
  d.mutable_error_model().set_edge_fidelity(3, 4, 0.999);
  d.mutable_error_model().set_edge_fidelity(4, 5, 0.999);
  Circuit c(3);
  c.cz(0, 1).cz(1, 2);
  qfs::Rng rng(45);
  Layout l = NoiseAwarePlacer().place(c, d, rng);
  for (int v = 0; v < 3; ++v) {
    EXPECT_GE(l.physical(v), 3) << "virtual " << v << " placed in bad region";
  }
}

TEST(Placement, NoiseAwareProducesValidInjection) {
  Device d = device::surface17_device();
  qfs::Rng gen(46);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 10;
  spec.num_gates = 80;
  spec.two_qubit_fraction = 0.5;
  Circuit c = workloads::random_circuit(spec, gen);
  qfs::Rng rng(47);
  Layout l = NoiseAwarePlacer().place(c, d, rng);
  std::vector<bool> seen(17, false);
  for (int v = 0; v < 17; ++v) {
    int p = l.physical(v);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 17);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = true;
  }
}

TEST(Placement, WiderCircuitThanDeviceIsContractViolation) {
  Device d = device::surface7_device();
  Circuit c(8);
  qfs::Rng rng(6);
  EXPECT_THROW(TrivialPlacer().place(c, d, rng), AssertionError);
}

TEST(Placement, FactoryKnowsAllNames) {
  for (const std::string name : {"trivial", "random", "degree-match",
                                 "annealing", "subgraph", "noise-aware"}) {
    EXPECT_NE(make_placer(name), nullptr);
  }
  EXPECT_THROW(make_placer("bogus"), AssertionError);
}

// ---------------------------------------------------------------------------
// Routers
// ---------------------------------------------------------------------------

struct RouterCase {
  std::string name;
};

class RouterSuite : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Router> router() const { return make_router(GetParam()); }
};

TEST_P(RouterSuite, AdjacentGatesNeedNoSwaps) {
  Device d = device::surface7_device();
  Circuit c(7);
  c.cz(0, 2).cz(0, 3).cz(3, 6);  // all coupled on surface-7
  qfs::Rng rng(1);
  auto result = router()->route(c, d, Layout::identity(7), rng);
  EXPECT_EQ(result.swaps_inserted, 0);
  EXPECT_EQ(result.mapped.gate_count(), 3);
  EXPECT_TRUE(respects_connectivity(result.mapped, d));
}

TEST_P(RouterSuite, NonAdjacentGateGetsRouted) {
  Device d = device::surface7_device();
  Circuit c(7);
  c.cz(0, 6);  // distance 2 on surface-7
  qfs::Rng rng(2);
  auto result = router()->route(c, d, Layout::identity(7), rng);
  // Routing work must happen: either SWAPs were inserted or the gate was
  // realised by a larger network (the bridge router's 4-CX construction).
  EXPECT_TRUE(result.swaps_inserted >= 1 || result.mapped.gate_count() > 1);
  EXPECT_TRUE(respects_connectivity(result.mapped, d));
}

TEST_P(RouterSuite, RoutedCircuitsPreserveSemantics) {
  Device d = device::surface7_device();
  qfs::Rng gen(42);
  for (int trial = 0; trial < 6; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 5;
    spec.num_gates = 25;
    spec.two_qubit_fraction = 0.5;
    Circuit c = workloads::random_circuit(spec, gen);
    // Routers take arity<=2 circuits; this spec only emits 1q/2q gates.
    qfs::Rng rng(trial);
    Layout initial = RandomPlacer().place(c, d, rng);
    std::vector<int> init_seg = initial.initial_segment(c.num_qubits());
    auto result = router()->route(c, d, initial, rng);
    EXPECT_TRUE(respects_connectivity(result.mapped, d));
    EXPECT_TRUE(sim::mapping_preserves_semantics(
        c, result.mapped, init_seg,
        result.final_layout.initial_segment(c.num_qubits()), rng))
        << GetParam() << " trial " << trial;
  }
}

TEST_P(RouterSuite, MeasureAndBarrierAreRemapped) {
  Device d = device::surface7_device();
  Circuit c(3);
  c.cz(0, 1).measure(0).barrier({0, 1, 2}).reset(2);
  qfs::Rng rng(3);
  Layout initial = Layout::from_partial({2, 5, 0}, 7);
  auto result = router()->route(c, d, initial, rng);
  bool found_measure = false;
  for (const auto& g : result.mapped.gates()) {
    if (g.kind == GateKind::kMeasure) {
      found_measure = true;
      // virtual 0 started on physical 2; cz(0@2, 1@5) is non-adjacent so a
      // swap may have moved it, but the measure must target wherever
      // virtual 0 lives — which is final_layout[0].
      EXPECT_EQ(g.qubits[0], result.final_layout.physical(0));
    }
  }
  EXPECT_TRUE(found_measure);
}

TEST_P(RouterSuite, ThreeQubitGateIsContractViolation) {
  Device d = device::surface7_device();
  Circuit c(3);
  c.ccx(0, 1, 2);
  qfs::Rng rng(4);
  EXPECT_THROW(router()->route(c, d, Layout::identity(7), rng), AssertionError);
}

TEST_P(RouterSuite, LongDistanceChainOnLine) {
  Device d = device::line_device(10);
  Circuit c(10);
  c.cx(0, 9).cx(9, 0);
  qfs::Rng rng(5);
  auto result = router()->route(c, d, Layout::identity(10), rng);
  EXPECT_TRUE(respects_connectivity(result.mapped, d));
  qfs::Rng check(6);
  EXPECT_TRUE(sim::mapping_preserves_semantics(
      c, result.mapped, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
      result.final_layout.initial_segment(10), check, 2));
}

INSTANTIATE_TEST_SUITE_P(Strategies, RouterSuite,
                         ::testing::Values("trivial", "lookahead",
                                           "noise-aware", "optimal",
                                           "bridge"));

TEST(BridgeRouter, Distance2CxBridgedWithoutLayoutChange) {
  Device d = device::line_device(3);
  Circuit c(3);
  c.cx(0, 2);
  qfs::Rng rng(61);
  auto r = BridgeRouter().route(c, d, Layout::identity(3), rng);
  EXPECT_EQ(r.swaps_inserted, 0);
  EXPECT_EQ(r.mapped.gate_count(), 4);  // the 4-CX bridge
  // Layout untouched.
  for (int v = 0; v < 3; ++v) EXPECT_EQ(r.final_layout.physical(v), v);
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
  qfs::Rng check(62);
  EXPECT_TRUE(sim::mapping_preserves_semantics(c, r.mapped, {0, 1, 2},
                                               {0, 1, 2}, check, 3));
}

TEST(BridgeRouter, Distance2CzBridged) {
  Device d = device::line_device(3);
  Circuit c(3);
  c.cz(0, 2);
  qfs::Rng rng(63);
  auto r = BridgeRouter().route(c, d, Layout::identity(3), rng);
  EXPECT_EQ(r.swaps_inserted, 0);
  qfs::Rng check(64);
  EXPECT_TRUE(sim::mapping_preserves_semantics(c, r.mapped, {0, 1, 2},
                                               {0, 1, 2}, check, 3));
}

TEST(BridgeRouter, LongerDistancesFallBackToSwaps) {
  Device d = device::line_device(5);
  Circuit c(5);
  c.cx(0, 4);
  qfs::Rng rng(65);
  auto r = BridgeRouter().route(c, d, Layout::identity(5), rng);
  EXPECT_GT(r.swaps_inserted, 0);
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
}

TEST(BridgeRouter, RepeatedFarPairKeepsLayoutStable) {
  // Two cx(0,2) gates: bridging costs 8 CX but the layout never moves, so
  // a following adjacent gate cx(0,1) stays adjacent.
  Device d = device::line_device(3);
  Circuit c(3);
  c.cx(0, 2).cx(0, 1);
  qfs::Rng rng(66);
  auto r = BridgeRouter().route(c, d, Layout::identity(3), rng);
  EXPECT_EQ(r.swaps_inserted, 0);
  qfs::Rng check(67);
  EXPECT_TRUE(sim::mapping_preserves_semantics(c, r.mapped, {0, 1, 2},
                                               {0, 1, 2}, check, 2));
}

TEST(BridgeRouter, WorksThroughFullPipeline) {
  Device d = device::surface17_device();
  Circuit c = workloads::qft(5);
  MappingOptions opts;
  opts.router = "bridge";
  qfs::Rng rng(68);
  MappingResult r = map_circuit(c, d, opts, rng);
  EXPECT_TRUE(d.gateset().supports_circuit(r.mapped));
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
  qfs::Rng check(69);
  EXPECT_TRUE(sim::mapping_preserves_semantics(c, r.mapped, r.initial_layout,
                                               r.final_layout, check, 2, 1e-6));
}

TEST(OptimalRouter, SingleFarGateUsesExactlyDistanceMinusOneSwaps) {
  Device d = device::line_device(6);
  Circuit c(6);
  c.cx(0, 5);
  qfs::Rng rng(50);
  auto r = OptimalRouter().route(c, d, Layout::identity(6), rng);
  EXPECT_EQ(r.swaps_inserted, 4);
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
}

TEST(OptimalRouter, ZeroSwapsWhenAllAdjacent) {
  Device d = device::line_device(4);
  Circuit c(4);
  c.cx(0, 1).cx(1, 2).cx(2, 3);
  qfs::Rng rng(51);
  auto r = OptimalRouter().route(c, d, Layout::identity(4), rng);
  EXPECT_EQ(r.swaps_inserted, 0);
}

TEST(OptimalRouter, NeverWorseThanHeuristics) {
  Device d = device::surface7_device();
  qfs::Rng gen(52);
  for (int trial = 0; trial < 5; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 5;
    spec.num_gates = 12;
    spec.two_qubit_fraction = 0.6;
    Circuit c = workloads::random_circuit(spec, gen);
    qfs::Rng r1(trial), r2(trial), r3(trial);
    int optimal =
        OptimalRouter().route(c, d, Layout::identity(7), r1).swaps_inserted;
    int trivial =
        TrivialRouter().route(c, d, Layout::identity(7), r2).swaps_inserted;
    int lookahead =
        LookaheadRouter().route(c, d, Layout::identity(7), r3).swaps_inserted;
    EXPECT_LE(optimal, trivial) << "trial " << trial;
    EXPECT_LE(optimal, lookahead) << "trial " << trial;
  }
}

TEST(OptimalRouter, ReusesSwapAcrossRepeatedGates) {
  // cx(0,3) twice on a line: one swap plan serves both; trivial pays twice?
  // Actually the trivial router leaves qubits moved, so both cost the same
  // here — the point is optimal must pay only dist-1 = 2 once.
  Device d = device::line_device(4);
  Circuit c(4);
  c.cx(0, 3).cx(0, 3);
  qfs::Rng rng(53);
  auto r = OptimalRouter().route(c, d, Layout::identity(4), rng);
  EXPECT_EQ(r.swaps_inserted, 2);
}

TEST(OptimalRouter, BudgetFallbackStillCorrect) {
  Device d = device::surface17_device();
  qfs::Rng gen(54);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 10;
  spec.num_gates = 40;
  spec.two_qubit_fraction = 0.5;
  Circuit c = workloads::random_circuit(spec, gen);
  qfs::Rng rng(55);
  // Tiny budget forces the fallback path.
  auto r = OptimalRouter(10).route(c, d, Layout::identity(17), rng);
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
  qfs::Rng check(56);
  EXPECT_TRUE(sim::mapping_preserves_semantics(
      c, r.mapped, Layout::identity(17).initial_segment(10),
      r.final_layout.initial_segment(10), check, 2));
}

TEST(Pipeline, SabreRefinementNotWorseOnAverage) {
  Device d = device::surface17_device();
  qfs::Rng gen(57);
  double plain_total = 0, refined_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 10;
    spec.num_gates = 80;
    spec.two_qubit_fraction = 0.4;
    Circuit c = workloads::random_circuit(spec, gen);
    MappingOptions plain;
    plain.router = "lookahead";
    MappingOptions refined = plain;
    refined.sabre_refinement_rounds = 2;
    qfs::Rng r1(trial), r2(trial);
    plain_total += map_circuit(c, d, plain, r1).swaps_inserted;
    refined_total += map_circuit(c, d, refined, r2).swaps_inserted;
  }
  EXPECT_LE(refined_total, plain_total * 1.05);
}

TEST(Pipeline, SabreRefinementPreservesSemantics) {
  Device d = device::surface7_device();
  qfs::Rng gen(58);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 4;
  spec.num_gates = 15;
  spec.two_qubit_fraction = 0.5;
  Circuit c = workloads::random_circuit(spec, gen);
  MappingOptions opts;
  opts.sabre_refinement_rounds = 3;
  qfs::Rng rng(59);
  MappingResult r = map_circuit(c, d, opts, rng);
  qfs::Rng check(60);
  EXPECT_TRUE(sim::mapping_preserves_semantics(c, r.mapped, r.initial_layout,
                                               r.final_layout, check, 2, 1e-6));
}

TEST(Routing, TrivialSwapCountMatchesDistance) {
  Device d = device::line_device(6);
  Circuit c(6);
  c.cx(0, 5);
  qfs::Rng rng(7);
  auto result = TrivialRouter().route(c, d, Layout::identity(6), rng);
  // distance 5 -> 4 swaps.
  EXPECT_EQ(result.swaps_inserted, 4);
}

TEST(Routing, LookaheadBeatsTrivialOnRepeatedFarPair) {
  // Repeatedly interacting far pair: lookahead should not undo its progress.
  Device d = device::line_device(8);
  Circuit c(8);
  for (int i = 0; i < 6; ++i) c.cx(0, 7);
  qfs::Rng r1(8), r2(8);
  auto trivial = TrivialRouter().route(c, d, Layout::identity(8), r1);
  auto ahead = LookaheadRouter().route(c, d, Layout::identity(8), r2);
  EXPECT_LE(ahead.swaps_inserted, trivial.swaps_inserted);
}

TEST(Routing, NoiseAwareAvoidsBadEdges) {
  // Make edge 1-2 terrible on a 4-ring so the router has a clean detour.
  Device ring("ring-4", device::ring_topology(4), device::surface_code_gateset(),
              device::ErrorModel(0.999, 0.99, 0.997));
  ring.mutable_error_model().set_edge_fidelity(1, 2, 0.5);
  Circuit c(4);
  c.cx(0, 2);  // distance 2 both ways round the ring
  qfs::Rng rng(9);
  auto result = NoiseAwareRouter().route(c, ring, Layout::identity(4), rng);
  // The swap must use the 0-3-2 side, never touching edge 1-2.
  for (const auto& g : result.mapped.gates()) {
    if (g.kind == GateKind::kSwap) {
      bool uses_bad = (g.qubits[0] == 1 && g.qubits[1] == 2) ||
                      (g.qubits[0] == 2 && g.qubits[1] == 1);
      EXPECT_FALSE(uses_bad);
    }
  }
  EXPECT_TRUE(respects_connectivity(result.mapped, ring));
}

TEST(Routing, FactoryRejectsUnknown) {
  EXPECT_THROW(make_router("bogus"), AssertionError);
}

// ---------------------------------------------------------------------------
// Full pipeline
// ---------------------------------------------------------------------------

TEST(Pipeline, GhzOnSurface7EndToEnd) {
  Device d = device::surface7_device();
  Circuit c = workloads::ghz(4);
  qfs::Rng rng(10);
  MappingResult r = map_circuit(c, d, rng);
  EXPECT_TRUE(d.gateset().supports_circuit(r.mapped));
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
  EXPECT_GE(r.gates_after, r.gates_before);
  EXPECT_LE(r.fidelity_after, r.fidelity_before + 1e-12);
  EXPECT_GE(r.fidelity_decrease_pct, -1e-9);
}

TEST(Pipeline, MappedCircuitPreservesSemantics) {
  Device d = device::surface7_device();
  qfs::Rng gen(11);
  for (int trial = 0; trial < 4; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 4;
    spec.num_gates = 15;
    spec.two_qubit_fraction = 0.4;
    Circuit c = workloads::random_circuit(spec, gen);
    qfs::Rng rng(trial);
    MappingResult r = map_circuit(c, d, rng);
    qfs::Rng check(trial + 100);
    EXPECT_TRUE(sim::mapping_preserves_semantics(
        c, r.mapped, r.initial_layout, r.final_layout, check, 2, 1e-6))
        << "trial " << trial;
  }
}

TEST(Pipeline, ToffoliCircuitIsDecomposedThenRouted) {
  Device d = device::surface7_device();
  Circuit c(3);
  c.ccx(0, 1, 2);
  qfs::Rng rng(12);
  MappingResult r = map_circuit(c, d, rng);
  EXPECT_TRUE(d.gateset().supports_circuit(r.mapped));
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
  qfs::Rng check(13);
  EXPECT_TRUE(sim::mapping_preserves_semantics(c, r.mapped, r.initial_layout,
                                               r.final_layout, check, 2, 1e-6));
}

TEST(Pipeline, OverheadZeroWhenNoRoutingNeeded) {
  Device d = device::line_device(3);
  Circuit c(3);
  c.cz(0, 1).cz(1, 2);
  qfs::Rng rng(14);
  MappingResult r = map_circuit(c, d, rng);
  EXPECT_EQ(r.swaps_inserted, 0);
  EXPECT_DOUBLE_EQ(r.gate_overhead_pct, 0.0);
  EXPECT_NEAR(r.fidelity_decrease_pct, 0.0, 1e-9);
}

TEST(Pipeline, OverheadPositiveWhenRoutingNeeded) {
  Device d = device::line_device(5);
  Circuit c(5);
  c.cz(0, 4);
  qfs::Rng rng(15);
  MappingResult r = map_circuit(c, d, rng);
  EXPECT_GT(r.swaps_inserted, 0);
  EXPECT_GT(r.gate_overhead_pct, 0.0);
  EXPECT_GT(r.fidelity_decrease_pct, 0.0);
}

TEST(Pipeline, LatencyComputedOnDemand) {
  Device d = device::surface17_device();
  Circuit c = workloads::ghz(6);
  MappingOptions opts;
  opts.compute_latency = true;
  qfs::Rng rng(16);
  MappingResult r = map_circuit(c, d, opts, rng);
  EXPECT_GT(r.latency_before_ns, 0.0);
  EXPECT_GE(r.latency_after_ns, r.latency_before_ns);
}

TEST(Pipeline, AlternativeStrategiesProduceValidResults) {
  Device d = device::surface17_device();
  qfs::Rng gen(17);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 8;
  spec.num_gates = 60;
  spec.two_qubit_fraction = 0.4;
  Circuit c = workloads::random_circuit(spec, gen);
  for (const std::string placer : {"trivial", "degree-match", "annealing"}) {
    for (const std::string router : {"trivial", "lookahead", "noise-aware"}) {
      MappingOptions opts;
      opts.placer = placer;
      opts.router = router;
      qfs::Rng rng(18);
      MappingResult r = map_circuit(c, d, opts, rng);
      EXPECT_TRUE(respects_connectivity(r.mapped, d))
          << placer << "+" << router;
      EXPECT_TRUE(d.gateset().supports_circuit(r.mapped))
          << placer << "+" << router;
    }
  }
}

// Exhaustive device x router invariant sweep: every combination must yield
// a native, connectivity-compliant circuit.
class DeviceRouterGrid
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(DeviceRouterGrid, PipelineInvariantsHold) {
  auto [device_id, router] = GetParam();
  Device d;
  switch (device_id) {
    case 0: d = device::surface17_device(); break;
    case 1: d = device::heavy_hex27_device(); break;
    case 2: d = device::grid_device(4, 5); break;
    default: d = device::line_device(20); break;
  }
  qfs::Rng gen(71);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 10;
  spec.num_gates = 50;
  spec.two_qubit_fraction = 0.4;
  Circuit c = workloads::random_circuit(spec, gen);
  MappingOptions opts;
  opts.router = router;
  qfs::Rng rng(72);
  MappingResult r = map_circuit(c, d, opts, rng);
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
  EXPECT_TRUE(d.gateset().supports_circuit(r.mapped));
  EXPECT_GE(r.gates_after, r.gates_before);
  EXPECT_LE(r.log_fidelity_after, r.log_fidelity_before + 1e-9);
  // Layout maps stay injective.
  std::set<int> init(r.initial_layout.begin(), r.initial_layout.end());
  std::set<int> fin(r.final_layout.begin(), r.final_layout.end());
  EXPECT_EQ(init.size(), r.initial_layout.size());
  EXPECT_EQ(fin.size(), r.final_layout.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeviceRouterGrid,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values("trivial", "lookahead", "noise-aware",
                                         "bridge")));

TEST(Recommend, SparseLowDegreeGetsSubgraph) {
  Circuit c = workloads::ghz(12);  // path interaction graph
  auto rec = recommend_mapping(profile::profile_circuit(c));
  EXPECT_EQ(rec.options.placer, "subgraph");
  EXPECT_EQ(rec.options.router, "lookahead");
  EXPECT_NE(rec.rationale.find("embedding"), std::string::npos);
}

TEST(Recommend, DenseUniformGetsDegreeMatch) {
  Circuit c = workloads::qft(8);  // complete, near-uniform interaction graph
  auto rec = recommend_mapping(profile::profile_circuit(c));
  EXPECT_EQ(rec.options.placer, "degree-match");
}

TEST(Recommend, ConcentratedWeightsGetAnnealing) {
  // One dominant pair amid light background interactions on a dense graph.
  Circuit c(6);
  for (int i = 0; i < 60; ++i) c.cx(0, 1);
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) c.cz(a, b);
  }
  auto p = profile::profile_circuit(c);
  ASSERT_GT(p.max_degree, 4);  // not embeddable
  auto rec = recommend_mapping(p);
  EXPECT_EQ(rec.options.placer, "annealing");
}

TEST(Recommend, RecommendationImprovesOnBaseline) {
  Device d = device::surface97_device();
  Circuit c = workloads::ghz(24);
  auto rec = recommend_mapping(profile::profile_circuit(c));
  qfs::Rng r1(1), r2(1);
  auto baseline = map_circuit(c, d, r1);
  auto tuned = map_circuit(c, d, rec.options, r2);
  EXPECT_LT(tuned.swaps_inserted, baseline.swaps_inserted);
  EXPECT_EQ(tuned.swaps_inserted, 0);  // GHZ embeds exactly
}

TEST(Recommend, AllRecommendationsAreRunnable) {
  Device d = device::surface17_device();
  qfs::Rng gen(80);
  for (int trial = 0; trial < 5; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 8;
    spec.num_gates = 60;
    spec.two_qubit_fraction = 0.2 + 0.15 * trial;
    Circuit c = workloads::random_circuit(spec, gen);
    auto rec = recommend_mapping(profile::profile_circuit(c));
    qfs::Rng rng(trial);
    MappingResult r = map_circuit(c, d, rec.options, rng);
    EXPECT_TRUE(respects_connectivity(r.mapped, d)) << rec.options.placer;
  }
}

TEST(Pipeline, DeterministicForFixedSeed) {
  Device d = device::surface17_device();
  Circuit c = workloads::qft(5);
  MappingOptions opts;
  opts.placer = "annealing";
  opts.router = "lookahead";
  qfs::Rng r1(99), r2(99);
  MappingResult a = map_circuit(c, d, opts, r1);
  MappingResult b = map_circuit(c, d, opts, r2);
  EXPECT_EQ(a.mapped, b.mapped);
  EXPECT_EQ(a.initial_layout, b.initial_layout);
  EXPECT_EQ(a.swaps_inserted, b.swaps_inserted);
}

TEST(Pipeline, IbmDeviceEndToEnd) {
  Device d = device::heavy_hex27_device();
  Circuit c = workloads::qft(6);
  qfs::Rng rng(20);
  MappingResult r = map_circuit(c, d, rng);
  EXPECT_TRUE(d.gateset().supports_circuit(r.mapped));
  EXPECT_TRUE(respects_connectivity(r.mapped, d));
}

}  // namespace
}  // namespace qfs::mapper
