#include <gtest/gtest.h>

#include <cmath>

#include "compiler/schedule.h"
#include "device/device.h"
#include "isa/timed_program.h"
#include "qasm/cqasm_writer.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "sim/equivalence.h"
#include "workloads/random_circuit.h"

namespace qfs::qasm {
namespace {

using circuit::Circuit;
using circuit::GateKind;

// ---------------------------------------------------------------------------
// Angle expressions
// ---------------------------------------------------------------------------

TEST(AngleExpr, Literals) {
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("42").value(), 42.0);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("-3").value(), -3.0);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("1e-2").value(), 0.01);
}

TEST(AngleExpr, Pi) {
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("pi").value(), M_PI);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("pi/2").value(), M_PI / 2);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("-pi/4").value(), -M_PI / 4);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("3*pi/4").value(), 3 * M_PI / 4);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("2*pi").value(), 2 * M_PI);
}

TEST(AngleExpr, ArithmeticAndParens) {
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("1+2*3").value(), 7.0);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("(1+2)*3").value(), 9.0);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("1-2-3").value(), -4.0);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("8/2/2").value(), 2.0);
  EXPECT_DOUBLE_EQ(evaluate_angle_expression("--2").value(), 2.0);
}

TEST(AngleExpr, Whitespace) {
  EXPECT_DOUBLE_EQ(evaluate_angle_expression(" pi / 2 ").value(), M_PI / 2);
}

TEST(AngleExpr, Errors) {
  EXPECT_FALSE(evaluate_angle_expression("").is_ok());
  EXPECT_FALSE(evaluate_angle_expression("pi pi").is_ok());
  EXPECT_FALSE(evaluate_angle_expression("(1+2").is_ok());
  EXPECT_FALSE(evaluate_angle_expression("1/0").is_ok());
  EXPECT_FALSE(evaluate_angle_expression("abc").is_ok());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(Parser, MinimalProgram) {
  auto result = parse(
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[3];\n"
      "creg c[3];\n"
      "h q[0];\n"
      "cx q[0],q[1];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Circuit& c = result.value();
  EXPECT_EQ(c.num_qubits(), 3);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gates()[0].kind, GateKind::kH);
  EXPECT_EQ(c.gates()[1].kind, GateKind::kCx);
  EXPECT_EQ(c.gates()[1].qubits, (std::vector<int>{0, 1}));
}

TEST(Parser, ParametrisedGates) {
  auto result = parse(
      "qreg q[2];\n"
      "rz(pi/4) q[0];\n"
      "u3(pi/2, 0, pi) q[1];\n"
      "cu1(0.25) q[0],q[1];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& gates = result.value().gates();
  ASSERT_EQ(gates.size(), 3u);
  EXPECT_DOUBLE_EQ(gates[0].params[0], M_PI / 4);
  EXPECT_EQ(gates[1].kind, GateKind::kU3);
  ASSERT_EQ(gates[1].params.size(), 3u);
  EXPECT_EQ(gates[2].kind, GateKind::kCphase);
}

TEST(Parser, MeasureResetBarrier) {
  auto result = parse(
      "qreg q[2]; creg c[2];\n"
      "measure q[0] -> c[0];\n"
      "reset q[1];\n"
      "barrier q[0],q[1];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& gates = result.value().gates();
  ASSERT_EQ(gates.size(), 3u);
  EXPECT_EQ(gates[0].kind, GateKind::kMeasure);
  EXPECT_EQ(gates[1].kind, GateKind::kReset);
  EXPECT_EQ(gates[2].kind, GateKind::kBarrier);
  EXPECT_EQ(gates[2].qubits.size(), 2u);
}

TEST(Parser, CommentsAndMultilineStatements) {
  auto result = parse(
      "// full-line comment\n"
      "qreg q[1];\n"
      "h // trailing comment\n"
      "q[0];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().size(), 1u);
}

TEST(Parser, AliasNames) {
  auto result = parse("qreg q[2]; u(1,2,3) q[0]; u1(0.5) q[1]; p(0.5) q[0];");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gates()[0].kind, GateKind::kU3);
  EXPECT_EQ(result.value().gates()[1].kind, GateKind::kPhase);
  EXPECT_EQ(result.value().gates()[2].kind, GateKind::kPhase);
}

TEST(Parser, ErrorNoQreg) {
  auto result = parse("h q[0];");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(Parser, ErrorUnknownGate) {
  auto result = parse("qreg q[1]; frobnicate q[0];");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("frobnicate"), std::string::npos);
}

TEST(Parser, ErrorQubitOutOfRange) {
  EXPECT_FALSE(parse("qreg q[2]; h q[2];").is_ok());
}

TEST(Parser, ErrorUnknownRegister) {
  EXPECT_FALSE(parse("qreg q[2]; h r[0];").is_ok());
}

TEST(Parser, UnknownRegisterInBroadcastRejected) {
  EXPECT_FALSE(parse("qreg q[2]; h r;").is_ok());
}

TEST(Parser, ErrorWrongParamCount) {
  EXPECT_FALSE(parse("qreg q[1]; rz q[0];").is_ok());
  EXPECT_FALSE(parse("qreg q[1]; rz(1,2) q[0];").is_ok());
}

TEST(Parser, ErrorUnterminatedStatement) {
  EXPECT_FALSE(parse("qreg q[1]; h q[0]").is_ok());
}

TEST(Parser, ErrorRepeatedOperand) {
  // External input must produce a status, not a contract violation.
  auto result = parse("qreg q[2]; cx q[0],q[0];");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("repeated"), std::string::npos);
}

TEST(Parser, ErrorMentionsLineNumber) {
  auto result = parse("qreg q[1];\nh q[0];\nbogus q[0];\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Multiple registers (QASMBench-style programs)
// ---------------------------------------------------------------------------

TEST(Parser, MultipleQregsConcatenate) {
  // Registers occupy consecutive index ranges in declaration order.
  auto result = parse("qreg q[3]; qreg anc[2]; x q[2]; x anc[0]; x anc[1];");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().num_qubits(), 5);
  EXPECT_EQ(result.value().gates()[0].qubits[0], 2);
  EXPECT_EQ(result.value().gates()[1].qubits[0], 3);
  EXPECT_EQ(result.value().gates()[2].qubits[0], 4);
}

TEST(Parser, CrossRegisterTwoQubitGate) {
  auto result = parse("qreg a[2]; qreg b[2]; cx a[1],b[0];");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gates()[0].qubits, (std::vector<int>{1, 2}));
}

TEST(Parser, BroadcastOverSecondRegister) {
  auto result = parse("qreg a[2]; qreg b[3]; h b;");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gate_count(), 3);
  EXPECT_EQ(result.value().gates()[0].qubits[0], 2);
  EXPECT_EQ(result.value().gates()[2].qubits[0], 4);
}

TEST(Parser, PerRegisterIndexBoundsEnforced) {
  // a[2] is out of range for a even though the circuit has 4 qubits.
  EXPECT_FALSE(parse("qreg a[2]; qreg b[2]; h a[2];").is_ok());
}

TEST(Parser, MultipleCregsAccepted) {
  auto result =
      parse("qreg q[2]; creg c[2]; creg d[2]; measure q[0] -> c[0];");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
}

TEST(Parser, DuplicateRegisterNamesRejected) {
  auto dup_q = parse("qreg q[1]; qreg q[2];");
  ASSERT_FALSE(dup_q.is_ok());
  EXPECT_NE(dup_q.status().message().find("duplicate"), std::string::npos);
  EXPECT_FALSE(parse("creg c[1]; qreg q[1]; creg c[2];").is_ok());
}

TEST(Parser, TruncatedProgramNamesLastLine) {
  auto result = parse("qreg q[3];\nh q[0];\ncx q[0],\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(result.status().message().find("unterminated"),
            std::string::npos);
}

TEST(Parser, BadAngleExpressionCarriesLineNumber) {
  auto result = parse("qreg q[1];\nrz(pi/0) q[0];\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  auto garbage = parse("qreg q[1];\nrz(1+*2) q[0];\n");
  ASSERT_FALSE(garbage.is_ok());
  EXPECT_NE(garbage.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, UnknownStatementCarriesLineNumber) {
  auto result = parse("qreg q[2];\ncx q[0],q[1];\nteleport q[0];\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(result.status().message().find("teleport"), std::string::npos);
}

TEST(Parser, OutOfRangeIndexCarriesLineNumber) {
  auto result = parse("qreg q[2];\nh q[5];\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos);
}

TEST(Parser, NegativeIndexCarriesLineNumber) {
  auto result = parse("qreg q[2];\nh q[-1];\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, MalformedRegisterDeclarationCarriesLineNumber) {
  auto result = parse("qreg q[banana];\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Register broadcast
// ---------------------------------------------------------------------------

TEST(Broadcast, SingleQubitGateOverRegister) {
  auto result = parse("qreg q[4]; h q;");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gate_count(), 4);
  for (const auto& g : result.value().gates()) {
    EXPECT_EQ(g.kind, GateKind::kH);
  }
}

TEST(Broadcast, MeasureAndResetOverRegister) {
  auto result = parse("qreg q[3]; creg c[3]; reset q; measure q -> c;");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  auto counts = result.value().count_by_kind();
  EXPECT_EQ(counts[GateKind::kReset], 3);
  EXPECT_EQ(counts[GateKind::kMeasure], 3);
}

// ---------------------------------------------------------------------------
// QASMBench macro gates: each expansion must be unitarily equivalent to an
// independent reference construction (not the expansion network itself).
// ---------------------------------------------------------------------------

circuit::Circuit parsed(const std::string& body) {
  auto result = parse("qreg q[3]; " + body);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.value();
}

TEST(MacroGates, U2IsU3WithPiOver2Theta) {
  circuit::Circuit ref(3);
  ref.u3(M_PI / 2.0, 0.3, 1.1, 0);
  EXPECT_TRUE(sim::circuits_equivalent(parsed("u2(0.3,1.1) q[0];"), ref));
}

TEST(MacroGates, RzzMatchesPhaseConstruction) {
  // rzz(t) = (P(t) x P(t)) . CP(-2t) up to global phase.
  const double t = 0.7;
  circuit::Circuit ref(3);
  ref.p(t, 0).p(t, 1).cp(-2.0 * t, 0, 1);
  EXPECT_TRUE(sim::circuits_equivalent(parsed("rzz(0.7) q[0],q[1];"), ref));
}

TEST(MacroGates, RxxIsHadamardConjugatedRzz) {
  const double t = 0.45;
  circuit::Circuit ref(3);
  ref.h(0).h(1).p(t, 0).p(t, 1).cp(-2.0 * t, 0, 1).h(0).h(1);
  EXPECT_TRUE(sim::circuits_equivalent(parsed("rxx(0.45) q[0],q[1];"), ref));
}

TEST(MacroGates, CrzMatchesControlPhaseConstruction) {
  // Controlled-RZ(l) = P(-l/2) on the control, then CP(l).
  const double l = 0.9;
  circuit::Circuit ref(3);
  ref.p(-l / 2.0, 0).cp(l, 0, 1);
  EXPECT_TRUE(sim::circuits_equivalent(parsed("crz(0.9) q[0],q[1];"), ref));
}

TEST(MacroGates, Cu3SpecialCases) {
  // cu3(0,0,l) is the controlled phase; cu3(pi,0,pi) is CX.
  circuit::Circuit cp_ref(3);
  cp_ref.cp(0.8, 0, 1);
  EXPECT_TRUE(
      sim::circuits_equivalent(parsed("cu3(0,0,0.8) q[0],q[1];"), cp_ref));
  circuit::Circuit cx_ref(3);
  cx_ref.cx(0, 1);
  EXPECT_TRUE(
      sim::circuits_equivalent(parsed("cu3(pi,0,pi) q[0],q[1];"), cx_ref));
}

TEST(MacroGates, ChIsControlledHadamard) {
  // Ry(-pi/4) X Ry(pi/4) = H exactly, so this three-gate network is the
  // phase-exact controlled-H the qelib1 expansion must reproduce.
  circuit::Circuit ref(3);
  ref.ry(M_PI / 4.0, 1).cx(0, 1).ry(-M_PI / 4.0, 1);
  EXPECT_TRUE(sim::circuits_equivalent(parsed("ch q[0],q[1];"), ref));
}

TEST(MacroGates, CczParsesNatively) {
  circuit::Circuit ref(3);
  ref.h(2).ccx(0, 1, 2).h(2);
  EXPECT_TRUE(
      sim::circuits_equivalent(parsed("ccz q[0],q[1],q[2];"), ref, 1e-8));
}

TEST(MacroGates, BroadcastAndErrorsApply) {
  // Macros broadcast like builtins and reject bad shapes.
  auto broadcast = parse("qreg q[3]; u2(0,pi) q;");
  ASSERT_TRUE(broadcast.is_ok());
  EXPECT_EQ(broadcast.value().gate_count(), 3);
  EXPECT_FALSE(parse("qreg q[3]; rzz(1) q[0];").is_ok());
  EXPECT_FALSE(parse("qreg q[3]; rzz(1,2) q[0],q[1];").is_ok());
  EXPECT_FALSE(parse("qreg q[3]; ch q[0],q[0];").is_ok());
  // Macro names cannot be redefined by gate blocks.
  EXPECT_FALSE(parse("gate ch a,b { cx a,b; } qreg q[2];").is_ok());
}

TEST(Broadcast, BarrierOverRegister) {
  auto result = parse("qreg q[3]; barrier q;");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value().gates()[0].qubits.size(), 3u);
}

TEST(Broadcast, ParametrisedGateOverRegister) {
  auto result = parse("qreg q[3]; rz(pi/2) q;");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gate_count(), 3);
  for (const auto& g : result.value().gates()) {
    EXPECT_DOUBLE_EQ(g.params[0], M_PI / 2);
  }
}

TEST(Broadcast, TwoQubitBroadcastSameRegisterRejected) {
  // cx q,q would pair each qubit with itself.
  EXPECT_FALSE(parse("qreg q[2]; cx q,q;").is_ok());
}

// ---------------------------------------------------------------------------
// User-defined gates
// ---------------------------------------------------------------------------

TEST(GateDef, SimpleExpansion) {
  auto result = parse(
      "qreg q[2];\n"
      "gate bell a, b { h a; cx a, b; }\n"
      "bell q[0], q[1];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& gates = result.value().gates();
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_EQ(gates[0].kind, GateKind::kH);
  EXPECT_EQ(gates[0].qubits, (std::vector<int>{0}));
  EXPECT_EQ(gates[1].kind, GateKind::kCx);
  EXPECT_EQ(gates[1].qubits, (std::vector<int>{0, 1}));
}

TEST(GateDef, ParameterSubstitution) {
  auto result = parse(
      "qreg q[1];\n"
      "gate twist(theta) a { rz(theta/2) a; rz(-theta/2) a; rx(theta) a; }\n"
      "twist(pi) q[0];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const auto& gates = result.value().gates();
  ASSERT_EQ(gates.size(), 3u);
  EXPECT_DOUBLE_EQ(gates[0].params[0], M_PI / 2);
  EXPECT_DOUBLE_EQ(gates[1].params[0], -M_PI / 2);
  EXPECT_DOUBLE_EQ(gates[2].params[0], M_PI);
}

TEST(GateDef, NestedDefinitions) {
  auto result = parse(
      "qreg q[3];\n"
      "gate pair a, b { cx a, b; }\n"
      "gate chain a, b, c { pair a, b; pair b, c; }\n"
      "chain q[0], q[1], q[2];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gate_count(), 2);
  EXPECT_EQ(result.value().gates()[1].qubits, (std::vector<int>{1, 2}));
}

TEST(GateDef, MultilineBody) {
  auto result = parse(
      "qreg q[2];\n"
      "gate prep(a) x1, x2 {\n"
      "  ry(a) x1;\n"
      "  cz x1, x2;\n"
      "}\n"
      "prep(0.5) q[0], q[1];\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gate_count(), 2);
}

TEST(GateDef, UnitaryMatchesInlineVersion) {
  auto with_def = parse(
      "qreg q[2];\n"
      "gate mix(t) a, b { ry(t) a; cx a, b; rz(-t) b; }\n"
      "mix(0.7) q[0], q[1];\n"
      "mix(0.2) q[1], q[0];\n");
  auto inline_version = parse(
      "qreg q[2];\n"
      "ry(0.7) q[0]; cx q[0],q[1]; rz(-0.7) q[1];\n"
      "ry(0.2) q[1]; cx q[1],q[0]; rz(-0.2) q[0];\n");
  ASSERT_TRUE(with_def.is_ok()) << with_def.status().to_string();
  ASSERT_TRUE(inline_version.is_ok());
  EXPECT_TRUE(
      sim::circuits_equivalent(with_def.value(), inline_version.value()));
}

TEST(GateDef, BroadcastInvocation) {
  auto result = parse(
      "qreg q[3];\n"
      "gate flip a { x a; }\n"
      "flip q;\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().gate_count(), 3);
}

TEST(GateDef, Errors) {
  // Redefinition of a builtin.
  EXPECT_FALSE(parse("qreg q[1]; gate h a { x a; }").is_ok());
  // Unknown formal qubit in body.
  EXPECT_FALSE(
      parse("qreg q[1]; gate bad a { x b; } bad q[0];").is_ok());
  // Unknown parameter in body expression.
  EXPECT_FALSE(
      parse("qreg q[1]; gate bad(t) a { rz(u) a; } bad(1) q[0];").is_ok());
  // Wrong invocation arity.
  EXPECT_FALSE(
      parse("qreg q[2]; gate one a { x a; } one q[0], q[1];").is_ok());
  // Wrong parameter count.
  EXPECT_FALSE(
      parse("qreg q[1]; gate p1(t) a { rz(t) a; } p1 q[0];").is_ok());
  // Recursive definition cannot even be written (name unknown inside its
  // own body at definition time is fine; expansion detects the cycle).
  auto recursive = parse(
      "qreg q[1]; gate loop a { x a; } "
      "gate loop2 a { loop2 a; } loop2 q[0];");
  EXPECT_FALSE(recursive.is_ok());
}

// Robustness: arbitrary garbage must produce a parse error, never a crash
// or an uncontrolled exception.
class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, GarbageInputsRejectedGracefully) {
  qfs::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Mix of QASM-ish tokens and noise, random lengths.
  static const char* fragments[] = {
      "qreg q[", "];", "h ", "cx ", "q[0]", ",", "measure", "->", "creg c[",
      "rz(", "pi", ")", ";", "\n", "OPENQASM 2.0;", "{", "}", "0", "9999999",
      "-", "barrier", "((", "u3(1,2", "include \"x\"", "\t", "@", "q q q"};
  std::string source;
  int pieces = rng.uniform_int(1, 40);
  for (int i = 0; i < pieces; ++i) {
    source += fragments[rng.uniform_index(std::size(fragments))];
  }
  auto result = parse(source);
  // Either it parsed (some garbage is accidentally valid) or it failed with
  // a proper status; both are fine — crashing or throwing is not.
  if (!result.is_ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    EXPECT_FALSE(result.status().message().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Writer + round trip
// ---------------------------------------------------------------------------

TEST(Writer, EmitsHeaderAndRegisters) {
  Circuit c(2, "demo");
  c.h(0).cx(0, 1);
  std::string text = to_qasm(c);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(text.find("h q[0];"), std::string::npos);
  EXPECT_NE(text.find("cx q[0],q[1];"), std::string::npos);
}

TEST(Writer, PhaseGateUsesU1Spelling) {
  Circuit c(1);
  c.p(0.5, 0);
  EXPECT_NE(to_qasm(c).find("u1(0.5"), std::string::npos);
}

TEST(Writer, MeasureArrow) {
  Circuit c(2);
  c.measure(1);
  EXPECT_NE(to_qasm(c).find("measure q[1] -> c[1];"), std::string::npos);
}

TEST(RoundTrip, StructurePreserved) {
  Circuit c(3);
  c.h(0).t(1).sdg(2).cx(0, 1).cz(1, 2).swap(0, 2);
  c.rx(0.3, 0).ry(-0.7, 1).rz(M_PI / 3, 2).p(0.9, 0).cp(0.11, 0, 1);
  c.ccx(0, 1, 2);
  c.barrier({0, 1, 2});
  c.measure(0);

  auto result = parse(to_qasm(c));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Circuit& back = result.value();
  EXPECT_EQ(back.num_qubits(), 3);
  // ccz-free circuit: same gate sequence must round-trip exactly by kind.
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back.gates()[i].kind, c.gates()[i].kind) << "gate " << i;
    EXPECT_EQ(back.gates()[i].qubits, c.gates()[i].qubits) << "gate " << i;
  }
}

TEST(RoundTrip, AnglesSurviveWithHighPrecision) {
  Circuit c(1);
  c.rz(1.0 / 3.0, 0).u3(0.123456789, -2.3456789, 3.0101010101, 0);
  auto result = parse(to_qasm(c));
  ASSERT_TRUE(result.is_ok());
  const auto& gates = result.value().gates();
  EXPECT_NEAR(gates[0].params[0], 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(gates[1].params[1], -2.3456789, 1e-10);
}

// ---------------------------------------------------------------------------
// cQASM writer
// ---------------------------------------------------------------------------

TEST(Cqasm, HeaderAndKernel) {
  Circuit c(3, "bell");
  c.h(0).cx(0, 1);
  std::string text = to_cqasm(c);
  EXPECT_NE(text.find("version 1.0"), std::string::npos);
  EXPECT_NE(text.find("qubits 3"), std::string::npos);
  EXPECT_NE(text.find(".bell"), std::string::npos);
  EXPECT_NE(text.find("cnot q[0],q[1]"), std::string::npos);
}

TEST(Cqasm, SpellingTable) {
  Circuit c(2);
  c.sdg(0).tdg(1).sx(0).measure(1).reset(0).cp(0.5, 0, 1);
  std::string text = to_cqasm(c);
  EXPECT_NE(text.find("sdag q[0]"), std::string::npos);
  EXPECT_NE(text.find("tdag q[1]"), std::string::npos);
  EXPECT_NE(text.find("x90 q[0]"), std::string::npos);
  EXPECT_NE(text.find("measure_z q[1]"), std::string::npos);
  EXPECT_NE(text.find("prep_z q[0]"), std::string::npos);
  EXPECT_NE(text.find("cr q[0],q[1],0.5"), std::string::npos);
}

TEST(Cqasm, AnglesAfterOperands) {
  Circuit c(1);
  c.rx(1.25, 0);
  EXPECT_NE(to_cqasm(c).find("rx q[0],1.25"), std::string::npos);
}

TEST(Cqasm, BarrierOmitted) {
  Circuit c(2);
  c.h(0);
  c.barrier({0, 1});
  EXPECT_EQ(to_cqasm(c).find("barrier"), std::string::npos);
}

TEST(Cqasm, UnsupportedGateIsContractViolation) {
  Circuit c(3);
  c.cswap(0, 1, 2);  // no cQASM 1.0 spelling; must decompose first
  EXPECT_THROW((void)to_cqasm(c), AssertionError);
}

TEST(Cqasm, TimedProgramBundlesAndWaits) {
  // Build a program by scheduling a small circuit on a line device.
  device::Device d = device::line_device(2);
  Circuit c(2, "timed");
  c.rx(0.5, 0).rx(0.25, 0).measure(1);
  auto schedule = compiler::asap_schedule(c, d);
  auto program = isa::lower_to_timed_program(c, schedule);
  std::string text = to_cqasm(program);
  EXPECT_NE(text.find("version 1.0"), std::string::npos);
  EXPECT_NE(text.find("rx q[0],0.5"), std::string::npos);
  // measure starts at cycle 0 with rx -> same bundle with '|'.
  EXPECT_NE(text.find(" | "), std::string::npos);
  EXPECT_NE(text.find("{ "), std::string::npos);
}

TEST(Cqasm, TimedProgramEmitsWaitForGaps) {
  device::Device d = device::line_device(2);
  Circuit c(2);
  c.cz(0, 1).rx(0.1, 0);  // cz takes 2 cycles -> 1-cycle wait before rx
  auto program =
      isa::lower_to_timed_program(c, compiler::asap_schedule(c, d));
  std::string text = to_cqasm(program);
  EXPECT_NE(text.find("wait 1"), std::string::npos);
}

// Property sweep: random circuits survive write -> parse -> unitary check.
class QasmRoundTripSweep : public ::testing::TestWithParam<int> {};

TEST_P(QasmRoundTripSweep, RandomCircuitEquivalentAfterRoundTrip) {
  qfs::Rng rng(static_cast<std::uint64_t>(GetParam()));
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 4;
  spec.num_gates = 25;
  spec.two_qubit_fraction = 0.4;
  Circuit c = workloads::random_circuit(spec, rng);
  auto back = parse(to_qasm(c));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_TRUE(sim::circuits_equivalent(c, back.value(), 1e-8))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmRoundTripSweep, ::testing::Range(0, 12));

TEST(RoundTrip, UnitaryEquivalent) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(2).ccz(0, 1, 2).swap(1, 2).rz(0.77, 0);
  auto result = parse(to_qasm(c));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  // ccz is emitted as h-ccx-h; the unitary must still match.
  EXPECT_TRUE(sim::circuits_equivalent(c, result.value(), 1e-9));
}

}  // namespace
}  // namespace qfs::qasm
