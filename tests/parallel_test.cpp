#include "support/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

// The suite runner lives with the benches (bench/common.h); the determinism
// contract it carries is pinned here.
#include "common.h"
#include "device/device.h"
#include "support/rng.h"

namespace qfs {
namespace {

// ---------------------------------------------------------------------------
// derive_seed
// ---------------------------------------------------------------------------

TEST(DeriveSeed, DeterministicAndStreamSensitive) {
  EXPECT_EQ(derive_seed(2022, 0), derive_seed(2022, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(derive_seed(2022, stream));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across streams
  EXPECT_NE(derive_seed(1, 7), derive_seed(2, 7));  // seed-sensitive
}

TEST(DeriveSeed, AdjacentSeedsGiveUnrelatedStreams) {
  // Rng(derive_seed(s, i)) and Rng(derive_seed(s, i+1)) must not produce
  // correlated first draws (raw counter seeds would).
  Rng a(derive_seed(2022, 5));
  Rng b(derive_seed(2022, 6));
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    if (a.uniform_int(0, 1 << 20) != b.uniform_int(0, 1 << 20)) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { ++count; });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

// ---------------------------------------------------------------------------
// parallel_map / parallel_for
// ---------------------------------------------------------------------------

TEST(ParallelMap, PreservesInputOrder) {
  for (int jobs : {1, 2, 8}) {
    auto out = parallel_map(jobs, 257, [](std::size_t i) {
      return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) * 3);
    }
  }
}

TEST(ParallelMap, ZeroJobsMeansAuto) {
  EXPECT_GE(recommended_jobs(), 1);
  EXPECT_EQ(resolve_jobs(0), recommended_jobs());
  EXPECT_EQ(resolve_jobs(-3), 1);
  EXPECT_EQ(resolve_jobs(5), 5);
  auto out = parallel_map(0, 10, [](std::size_t i) { return i; });
  EXPECT_EQ(out.size(), 10u);
}

TEST(ParallelMap, EmptyAndSingleton) {
  EXPECT_TRUE(parallel_map(4, 0, [](std::size_t) { return 1; }).empty());
  auto one = parallel_map(4, 1, [](std::size_t) { return std::string("x"); });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], "x");
}

TEST(ParallelMap, PropagatesFirstExceptionByIndex) {
  for (int jobs : {1, 4}) {
    try {
      parallel_map(jobs, 64, [](std::size_t i) -> int {
        if (i == 3 || i == 40) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
        return 0;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // Serial order: index 3 fails first. The parallel path must report
      // the same lowest-index failure (index 40 may or may not also run).
      EXPECT_STREQ(e.what(), "boom at 3");
    }
  }
}

TEST(ParallelFor, RunsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(8, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ---------------------------------------------------------------------------
// ProgressReporter
// ---------------------------------------------------------------------------

TEST(ProgressReporter, DotsEveryStrideAndFinalNewline) {
  std::ostringstream os;
  ProgressReporter progress(3, &os);
  for (int i = 0; i < 10; ++i) progress.tick();
  progress.finish();
  progress.finish();  // idempotent
  EXPECT_EQ(os.str(), "...\n");
}

TEST(ProgressReporter, ThreadSafeTicks) {
  std::ostringstream os;
  ProgressReporter progress(1, &os);
  parallel_for(8, 40, [&progress](std::size_t) { progress.tick(); });
  progress.finish();
  EXPECT_EQ(os.str(), std::string(40, '.') + "\n");
}

// ---------------------------------------------------------------------------
// run_suite determinism (the RNG stream-coupling bugfix)
// ---------------------------------------------------------------------------

bench::SuiteRunConfig small_suite_config() {
  bench::SuiteRunConfig config;
  config.suite.random_count = 6;
  config.suite.real_count = 6;
  config.suite.reversible_count = 4;
  config.suite.max_qubits = 12;
  config.suite.max_gates = 300;
  config.mapping.placer = "degree-match";
  config.mapping.router = "lookahead";
  return config;
}

TEST(RunSuiteDeterminism, ByteIdenticalAcrossJobs) {
  device::Device dev = device::surface17_device();
  bench::SuiteRunConfig config = small_suite_config();
  std::string reference;
  for (int jobs : {1, 2, 8}) {
    config.jobs = jobs;
    std::string csv = bench::suite_rows_to_csv(bench::run_suite(dev, config));
    if (reference.empty()) {
      reference = csv;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(csv, reference) << "output diverged at --jobs " << jobs;
    }
  }
}

TEST(RunSuiteDeterminism, RepeatedRunsWithSameSeedMatch) {
  device::Device dev = device::surface17_device();
  bench::SuiteRunConfig config = small_suite_config();
  config.jobs = 4;
  std::string first = bench::suite_rows_to_csv(bench::run_suite(dev, config));
  std::string second = bench::suite_rows_to_csv(bench::run_suite(dev, config));
  EXPECT_EQ(first, second);
}

TEST(RunSuiteDeterminism, DifferentSeedsDiffer) {
  device::Device dev = device::surface17_device();
  bench::SuiteRunConfig config = small_suite_config();
  std::string a = bench::suite_rows_to_csv(bench::run_suite(dev, config));
  config.seed = 1234;
  std::string b = bench::suite_rows_to_csv(bench::run_suite(dev, config));
  EXPECT_NE(a, b);
}

TEST(RunSuiteDeterminism, AddingABenchmarkDoesNotPerturbEarlierRows) {
  // The original bug: one Rng threaded through generation and every
  // map_circuit call meant circuit i's mapping depended on how many draws
  // circuits 0..i-1 consumed, so growing the suite silently changed every
  // existing row. With per-circuit seed derivation, the first N random
  // benchmarks are identical whether or not an (N+1)-th exists.
  device::Device dev = device::surface17_device();
  bench::SuiteRunConfig config = small_suite_config();
  config.suite.real_count = 0;
  config.suite.reversible_count = 0;
  auto rows_small = bench::run_suite(dev, config);
  config.suite.random_count += 1;
  auto rows_grown = bench::run_suite(dev, config);
  ASSERT_EQ(rows_grown.size(), rows_small.size() + 1);
  rows_grown.pop_back();
  EXPECT_EQ(bench::suite_rows_to_csv(rows_grown),
            bench::suite_rows_to_csv(rows_small));
}

}  // namespace
}  // namespace qfs
