#include <gtest/gtest.h>

#include "graph/generators.h"
#include "profile/circuit_profile.h"
#include "profile/clustering.h"
#include "profile/dot_export.h"
#include "profile/interaction.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

namespace qfs::profile {
namespace {

using circuit::Circuit;

// ---------------------------------------------------------------------------
// Interaction graphs
// ---------------------------------------------------------------------------

TEST(Interaction, EmptyCircuitHasNoEdges) {
  Circuit c(4);
  graph::Graph g = interaction_graph(c);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Interaction, TwoQubitGatesAddWeight) {
  Circuit c(3);
  c.cx(0, 1).cx(0, 1).cz(1, 2);
  graph::Graph g = interaction_graph(c);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 2), 1.0);
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Interaction, SingleQubitGatesIgnored) {
  Circuit c(2);
  c.h(0).rz(0.3, 1).measure(0);
  EXPECT_EQ(interaction_graph(c).num_edges(), 0);
}

TEST(Interaction, OperandOrderIrrelevant) {
  Circuit c(2);
  c.cx(0, 1).cx(1, 0);
  EXPECT_DOUBLE_EQ(interaction_graph(c).edge_weight(0, 1), 2.0);
}

TEST(Interaction, ThreeQubitGateContributesAllPairs) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  graph::Graph g = interaction_graph(c);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Interaction, BarrierContributesNothing) {
  Circuit c(3);
  c.barrier({0, 1, 2});
  EXPECT_EQ(interaction_graph(c).num_edges(), 0);
}

TEST(Interaction, ActiveGraphCompacts) {
  Circuit c(6);
  c.cx(1, 4);  // qubits 0,2,3,5 inactive
  std::vector<int> qubit_of_node;
  graph::Graph g = active_interaction_graph(c, &qubit_of_node);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(qubit_of_node, (std::vector<int>{1, 4}));
}

TEST(Interaction, GhzInteractionIsPath) {
  graph::Graph g = interaction_graph(workloads::ghz(6));
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(3), 2);
}

TEST(Interaction, QftInteractionIsComplete) {
  graph::Graph g = interaction_graph(workloads::qft(5, false));
  EXPECT_EQ(g.num_edges(), 10);  // all pairs via cphase ladder
}

// ---------------------------------------------------------------------------
// Temporal slicing
// ---------------------------------------------------------------------------

TEST(Slicing, WindowsPartitionGates) {
  Circuit c(4);
  for (int i = 0; i < 12; ++i) c.cx(i % 3, 3);
  auto slices = sliced_interaction_graphs(c, 3);
  ASSERT_EQ(slices.size(), 3u);
  double total = 0.0;
  for (const auto& g : slices) total += g.total_weight();
  EXPECT_DOUBLE_EQ(total, 12.0);
}

TEST(Slicing, SingleSliceEqualsFullGraph) {
  Circuit c(3);
  c.cx(0, 1).cz(1, 2).cx(0, 1);
  auto slices = sliced_interaction_graphs(c, 1);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0], interaction_graph(c));
}

TEST(Drift, StationaryCircuitHasZeroDrift) {
  // Identical repeated layers: every window has the same interactions.
  Circuit c(4);
  for (int layer = 0; layer < 8; ++layer) {
    c.cx(0, 1).cx(2, 3);
  }
  EXPECT_NEAR(profile::interaction_drift(c, 4), 0.0, 1e-12);
}

TEST(Drift, PhaseChangingCircuitHasHighDrift) {
  // First half interacts (0,1); second half (2,3): windows disjoint.
  Circuit c(4);
  for (int i = 0; i < 6; ++i) c.cx(0, 1);
  for (int i = 0; i < 6; ++i) c.cx(2, 3);
  EXPECT_NEAR(profile::interaction_drift(c, 2), 1.0, 1e-12);
}

TEST(Drift, IntermediateValuesOrdered) {
  qfs::Rng rng(3);
  // Structured circuit (repeating ansatz) drifts less than a random one.
  Circuit ansatz = workloads::vqe_ansatz(6, 6, rng);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 6;
  spec.num_gates = ansatz.gate_count();
  spec.two_qubit_fraction = 0.4;
  Circuit random = workloads::random_circuit(spec, rng);
  EXPECT_LT(profile::interaction_drift(ansatz, 4),
            profile::interaction_drift(random, 4));
}

TEST(Drift, ValidatesSliceCount) {
  Circuit c(2);
  c.cx(0, 1);
  EXPECT_THROW(profile::interaction_drift(c, 1), AssertionError);
  EXPECT_THROW(sliced_interaction_graphs(c, 0), AssertionError);
}

// ---------------------------------------------------------------------------
// Circuit profiles
// ---------------------------------------------------------------------------

TEST(Profile, SizeParameters) {
  Circuit c(4, "demo");
  c.h(0).cx(0, 1).cz(1, 2).t(3).measure(3);
  CircuitProfile p = profile_circuit(c);
  EXPECT_EQ(p.name, "demo");
  EXPECT_EQ(p.num_qubits, 4);
  EXPECT_EQ(p.gate_count, 5);
  EXPECT_EQ(p.two_qubit_gates, 2);
  EXPECT_DOUBLE_EQ(p.two_qubit_fraction, 0.4);
  EXPECT_EQ(p.depth, c.depth());
}

TEST(Profile, GraphMetricsOnGhz) {
  CircuitProfile p = profile_circuit(workloads::ghz(6));
  EXPECT_EQ(p.ig_nodes, 6);
  EXPECT_EQ(p.ig_edges, 5);
  EXPECT_EQ(p.min_degree, 1);
  EXPECT_EQ(p.max_degree, 2);
  EXPECT_EQ(p.diameter, 5);
  EXPECT_DOUBLE_EQ(p.clustering, 0.0);
  // Path graph P6 average shortest path: 7/3.
  EXPECT_NEAR(p.avg_shortest_path, 7.0 / 3.0, 1e-9);
}

TEST(Profile, EmptyInteractionGraphSafe) {
  Circuit c(3);
  c.h(0);
  CircuitProfile p = profile_circuit(c);
  EXPECT_EQ(p.ig_nodes, 0);
  EXPECT_DOUBLE_EQ(p.avg_shortest_path, 0.0);
}

TEST(Profile, EdgeWeightStatsReflectRepetition) {
  Circuit c(3);
  for (int i = 0; i < 9; ++i) c.cx(0, 1);
  c.cx(1, 2);
  CircuitProfile p = profile_circuit(c);
  EXPECT_DOUBLE_EQ(p.edge_weight_max, 9.0);
  EXPECT_DOUBLE_EQ(p.edge_weight_min, 1.0);
  EXPECT_DOUBLE_EQ(p.edge_weight_mean, 5.0);
  EXPECT_GT(p.edge_weight_stddev, 0.0);
}

TEST(Profile, MetricVectorMatchesNames) {
  CircuitProfile p = profile_circuit(workloads::qft(5));
  auto v = graph_metric_vector(p);
  EXPECT_EQ(v.size(), graph_metric_names().size());
  EXPECT_DOUBLE_EQ(v[0], p.avg_shortest_path);
  EXPECT_DOUBLE_EQ(v[1], p.max_degree);
}

TEST(Profile, FeaturesTransposeProfiles) {
  std::vector<CircuitProfile> ps = {profile_circuit(workloads::ghz(4)),
                                    profile_circuit(workloads::qft(4))};
  auto features = profiles_to_features(ps);
  EXPECT_EQ(features.size(), graph_metric_names().size());
  for (const auto& f : features) EXPECT_EQ(f.values.size(), 2u);
}

// The paper's Fig. 4 claim: a random circuit with the same size parameters
// as a structured algorithm has a denser interaction graph.
TEST(Profile, RandomDenserThanStructuredAtSameSize) {
  qfs::Rng rng(5);
  graph::Graph ring = graph::cycle_graph(6);
  qfs::Rng qrng(6);
  Circuit qaoa = workloads::qaoa_maxcut(ring, 10, qrng);
  CircuitProfile pq = profile_circuit(qaoa);

  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 6;
  spec.num_gates = pq.gate_count;
  spec.two_qubit_fraction = pq.two_qubit_fraction;
  Circuit rand = workloads::random_circuit(spec, rng);
  CircuitProfile pr = profile_circuit(rand);

  EXPECT_EQ(pr.gate_count, pq.gate_count);
  EXPECT_NEAR(pr.two_qubit_fraction, pq.two_qubit_fraction, 0.01);
  EXPECT_GT(pr.density, pq.density);          // random is denser
  EXPECT_GE(pr.max_degree, pq.max_degree);    // and more connected
}

// ---------------------------------------------------------------------------
// DOT export
// ---------------------------------------------------------------------------

TEST(DotExport, StructureAndWeights) {
  Circuit c(3);
  c.cx(0, 1).cx(0, 1).cz(1, 2);
  std::string dot = to_dot(interaction_graph(c));
  EXPECT_NE(dot.find("graph g {"), std::string::npos);
  EXPECT_NE(dot.find("q0 -- q1"), std::string::npos);
  EXPECT_NE(dot.find("q1 -- q2"), std::string::npos);
  EXPECT_NE(dot.find("label=\"2\""), std::string::npos);
  EXPECT_NE(dot.find("penwidth"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExport, PlainStylingForCouplingGraphs) {
  DotOptions opts;
  opts.weight_styling = false;
  opts.node_prefix = "Q";
  opts.graph_name = "chip";
  graph::Graph g(2);
  g.add_edge(0, 1);
  std::string dot = to_dot(g, opts);
  EXPECT_NE(dot.find("graph chip {"), std::string::npos);
  EXPECT_NE(dot.find("Q0 -- Q1;"), std::string::npos);
  EXPECT_EQ(dot.find("penwidth"), std::string::npos);
}

TEST(DotExport, IsolatedNodesListed) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  std::string dot = to_dot(g);
  EXPECT_NE(dot.find("q2;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------------

std::vector<CircuitProfile> mixed_profiles() {
  std::vector<CircuitProfile> ps;
  qfs::Rng rng(7);
  // Family A: sparse chain interactions.
  for (int n = 5; n <= 16; ++n) ps.push_back(profile_circuit(workloads::ghz(n)));
  // Family B: dense random circuits.
  for (int i = 0; i < 12; ++i) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 8;
    spec.num_gates = 200;
    spec.two_qubit_fraction = 0.6;
    ps.push_back(profile_circuit(workloads::random_circuit(spec, rng)));
  }
  return ps;
}

TEST(Clustering, SeparatesSparseFromDense) {
  auto ps = mixed_profiles();
  qfs::Rng rng(8);
  ClusteringResult r = cluster_profiles(ps, 2, rng);
  ASSERT_EQ(r.cluster_of_circuit.size(), ps.size());
  // GHZ circuits (first 12) should share a cluster distinct from the dense
  // random ones.
  for (int i = 1; i < 12; ++i) {
    EXPECT_EQ(r.cluster_of_circuit[static_cast<std::size_t>(i)],
              r.cluster_of_circuit[0]);
  }
  EXPECT_NE(r.cluster_of_circuit[12], r.cluster_of_circuit[0]);
  for (std::size_t i = 13; i < ps.size(); ++i) {
    EXPECT_EQ(r.cluster_of_circuit[i], r.cluster_of_circuit[12]);
  }
}

TEST(Clustering, ReductionShrinksFeatureSpace) {
  auto ps = mixed_profiles();
  qfs::Rng rng(9);
  ClusteringResult reduced = cluster_profiles(ps, 2, rng, true);
  qfs::Rng rng2(9);
  ClusteringResult full = cluster_profiles(ps, 2, rng2, false);
  EXPECT_LT(reduced.feature_indices.size(), full.feature_indices.size());
  EXPECT_EQ(full.feature_indices.size(), graph_metric_names().size());
}

TEST(Clustering, EmptyProfilesIsContractViolation) {
  qfs::Rng rng(10);
  EXPECT_THROW(cluster_profiles({}, 1, rng), AssertionError);
}

}  // namespace
}  // namespace qfs::profile
