// support/hash: the stable 128-bit fingerprint hash under the compile
// cache. The digests below are *pinned*: they must never change across
// platforms, endianness, or compiler upgrades, because on-disk cache
// entries are addressed by them (a silent change would orphan every stored
// artifact and, worse, could alias distinct keys).
#include "support/hash.h"

#include <string>

#include "gtest/gtest.h"

namespace qfs {
namespace {

// 300 bytes = 18 full 16-byte blocks + a 12-byte tail, cycling the alphabet.
std::string multi_block_input() {
  std::string s(300, '\0');
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = char('a' + i % 26);
  return s;
}

TEST(HashTest, PinnedGoldenDigests) {
  // Empty input with seed 0 digests to all-zero (the murmur3 finalizer
  // fixed point) — a legal, stable key like any other.
  EXPECT_EQ(hash128("").hex(), "00000000000000000000000000000000");
  EXPECT_EQ(hash128("a").hex(), "85555565f6597889e6b53a48510e895a");
  EXPECT_EQ(hash128("abc").hex(), "b4963f3f3fad78673ba2744126ca2d52");
  EXPECT_EQ(hash128(multi_block_input()).hex(),
            "d788f6a6f8f78493e7bce8d1368fc48c");
  EXPECT_EQ(hash128("The quick brown fox jumps over the lazy dog").hex(),
            "e34bbc7bbc071b6c7a433ca9c49a9347");
}

TEST(HashTest, SeedChangesDigest) {
  EXPECT_EQ(hash128("abc", 42).hex(), "0d85089fb3cff7d67510712b42353d30");
  EXPECT_NE(hash128("abc", 42).hex(), hash128("abc", 0).hex());
  EXPECT_NE(hash128("", 1).hex(), hash128("", 0).hex());
}

TEST(HashTest, StreamingMatchesOneShot) {
  const std::string input = multi_block_input();
  // Every split point, including mid-block and block-boundary splits.
  for (std::size_t cut = 0; cut <= input.size(); cut += 7) {
    Hasher h;
    h.update(input.substr(0, cut));
    h.update(input.substr(cut));
    EXPECT_EQ(h.finish().hex(), hash128(input).hex()) << "cut=" << cut;
  }
  // Byte-at-a-time feeding.
  Hasher h;
  for (char c : input) h.update(&c, 1);
  EXPECT_EQ(h.finish().hex(), hash128(input).hex());
}

TEST(HashTest, FinishIsNonDestructive) {
  Hasher h;
  h.update("abc");
  Hash128 first = h.finish();
  Hash128 second = h.finish();
  EXPECT_EQ(first.hex(), second.hex());
  // Updating after a finish continues the stream.
  h.update("def");
  EXPECT_EQ(h.finish().hex(), hash128("abcdef").hex());
}

TEST(HashTest, HexIs32LowercaseChars) {
  std::string hex = hash128("x").hex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(HashTest, SmallPerturbationsChangeDigest) {
  std::string base = multi_block_input();
  std::string flipped = base;
  flipped[150] ^= 1;
  EXPECT_NE(hash128(base).hex(), hash128(flipped).hex());
  // Length extension must not collide with the shorter input.
  EXPECT_NE(hash128(base).hex(), hash128(base + std::string(1, '\0')).hex());
  EXPECT_NE(hash128("ab").hex(), hash128("a").hex());
}

TEST(Hash128Test, EqualityAndOrdering) {
  Hash128 a = hash128("a");
  Hash128 b = hash128("b");
  EXPECT_TRUE(a == hash128("a"));
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hex(), b.hex());
}

}  // namespace
}  // namespace qfs
