#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/assert.h"
#include "support/csv.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/strings.h"
#include "support/timer.h"

namespace qfs {
namespace {

// ---------------------------------------------------------------------------
// assert
// ---------------------------------------------------------------------------

TEST(Assert, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(QFS_ASSERT(1 + 1 == 2));
}

TEST(Assert, FailingConditionThrowsAssertionError) {
  EXPECT_THROW(QFS_ASSERT(false), AssertionError);
}

TEST(Assert, MessageIncludesExpressionAndLocation) {
  try {
    QFS_ASSERT_MSG(false, "custom context");
    FAIL() << "expected throw";
  } catch (const AssertionError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// status
// ---------------------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = parse_error("bad token");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.to_string(), "parse_error: bad token");
}

TEST(Status, AllCodeNamesAreDistinct) {
  std::set<std::string> names;
  for (auto code : {StatusCode::kOk, StatusCode::kInvalidArgument,
                    StatusCode::kNotFound, StatusCode::kOutOfRange,
                    StatusCode::kUnimplemented, StatusCode::kParseError,
                    StatusCode::kIoError, StatusCode::kFailedPrecondition,
                    StatusCode::kResourceExhausted}) {
    names.insert(status_code_name(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(Status, ResilienceCodes) {
  Status pre = failed_precondition("device too small");
  EXPECT_EQ(pre.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pre.to_string(), "failed_precondition: device too small");
  Status res = resource_exhausted("all attempts failed");
  EXPECT_EQ(res.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(res.to_string(), "resource_exhausted: all attempts failed");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = not_found("missing");
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ValueOrReturnsValueWhenOk) {
  StatusOr<int> v = 7;
  EXPECT_EQ(v.value_or(99), 7);
  EXPECT_EQ((StatusOr<std::string>("hi")).value_or("bye"), "hi");
}

TEST(StatusOr, ValueOrReturnsFallbackOnError) {
  StatusOr<int> v = resource_exhausted("none left");
  EXPECT_EQ(v.value_or(99), 99);
  StatusOr<std::string> s = not_found("gone");
  EXPECT_EQ(std::move(s).value_or("fallback"), "fallback");
}

TEST(StatusOr, ValueOnErrorIsContractViolation) {
  StatusOr<int> v = io_error("nope");
  EXPECT_THROW(v.value(), AssertionError);
}

TEST(StatusOr, ConstructionFromOkStatusIsContractViolation) {
  EXPECT_THROW(StatusOr<int>(Status::ok()), AssertionError);
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1 << 20) == b.uniform_int(0, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntBadRangeIsContractViolation) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 2), AssertionError);
}

TEST(Rng, UniformRealStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = rng.sample_without_replacement(20, 10);
    std::set<int> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 10u);
    for (int x : s) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, 20);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(31);
  auto s = rng.sample_without_replacement(5, 5);
  std::set<int> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementZero) {
  Rng rng(31);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, PickFromEmptyIsContractViolation) {
  Rng rng(37);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), AssertionError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(41);
  Rng forked = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(41);
  b.fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (forked.uniform_int(0, 1 << 20) == b.uniform_int(0, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 5);
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWhitespaceDropsEmpties) {
  auto parts = split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("surface-17", "surface"));
  EXPECT_FALSE(starts_with("surf", "surface"));
  EXPECT_TRUE(ends_with("test.qasm", ".qasm"));
  EXPECT_FALSE(ends_with("qasm", ".qasm"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("OpenQASM 2.0"), "openqasm 2.0"); }

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Strings, ParseInt) {
  int v = 0;
  EXPECT_TRUE(parse_int(" 42 ", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("4x", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("3.5", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(parse_double("-1e3", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("", v));
}

// ---------------------------------------------------------------------------
// json
// ---------------------------------------------------------------------------

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue::null().to_string(), "null");
  EXPECT_EQ(JsonValue::boolean(true).to_string(), "true");
  EXPECT_EQ(JsonValue::boolean(false).to_string(), "false");
  EXPECT_EQ(JsonValue::integer(-42).to_string(), "-42");
  EXPECT_EQ(JsonValue::number(2.5).to_string(), "2.5");
  EXPECT_EQ(JsonValue::string("hi").to_string(), "\"hi\"");
}

TEST(Json, ArrayAndObjectComposition) {
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::integer(1)).push_back(JsonValue::string("two"));
  JsonValue obj = JsonValue::object();
  obj.set("xs", std::move(arr)).set("ok", JsonValue::boolean(true));
  EXPECT_EQ(obj.to_string(), "{\"xs\":[1,\"two\"],\"ok\":true}");
}

TEST(Json, SetOverwritesExistingKey) {
  JsonValue obj = JsonValue::object();
  obj.set("k", JsonValue::integer(1));
  obj.set("k", JsonValue::integer(2));
  EXPECT_EQ(obj.to_string(), "{\"k\":2}");
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonValue::string("tab\there").to_string(), "\"tab\\there\"");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::array().to_string(), "[]");
  EXPECT_EQ(JsonValue::object().to_string(), "{}");
}

TEST(Json, PrettyPrintIndents) {
  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::integer(1));
  std::string pretty = obj.to_pretty_string(2);
  EXPECT_NE(pretty.find("{\n  \"a\": 1\n}"), std::string::npos);
}

TEST(Json, TypeContractViolations) {
  JsonValue scalar = JsonValue::integer(1);
  EXPECT_THROW(scalar.push_back(JsonValue::null()), AssertionError);
  EXPECT_THROW(scalar.set("k", JsonValue::null()), AssertionError);
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", JsonValue::null()), AssertionError);
}

TEST(Json, NonFiniteNumberIsContractViolation) {
  JsonValue v = JsonValue::number(std::nan(""));
  EXPECT_THROW((void)v.to_string(), AssertionError);
}

// ---------------------------------------------------------------------------
// csv
// ---------------------------------------------------------------------------

TEST(Csv, EscapePlainFieldUnchanged) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(Csv, EscapeComma) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(Csv, EscapeQuote) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

TEST(Csv, WriterEmitsHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"x", "y"});
  w.row({"1", "2"});
  w.row({"3", "4"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Csv, RowBeforeHeaderIsContractViolation) {
  std::ostringstream os;
  CsvWriter w(os);
  EXPECT_THROW(w.row({"1"}), AssertionError);
}

TEST(Csv, RowWidthMismatchIsContractViolation) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"x", "y"});
  EXPECT_THROW(w.row({"only-one"}), AssertionError);
}

// ---------------------------------------------------------------------------
// JsonValue::parse — the strict wire parser qfsd feeds untrusted input to.
// ---------------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(JsonValue::parse("null").value().is_null());
  EXPECT_TRUE(JsonValue::parse("true").value().as_bool());
  EXPECT_FALSE(JsonValue::parse("false").value().as_bool());
  EXPECT_EQ(JsonValue::parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonParse, IntegersKeepIntegerKind) {
  auto v = JsonValue::parse("-42").value();
  ASSERT_TRUE(v.is_integer());
  EXPECT_EQ(v.as_integer(), -42);
  EXPECT_DOUBLE_EQ(v.as_number(), -42.0);
}

TEST(JsonParse, DecimalsAndExponentsAreDoubles) {
  auto v = JsonValue::parse("2.5").value();
  EXPECT_TRUE(v.is_number());
  EXPECT_FALSE(v.is_integer());
  EXPECT_DOUBLE_EQ(v.as_number(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").value().as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-1.25E-2").value().as_number(), -0.0125);
}

TEST(JsonParse, NestedDocumentPreservesMemberOrder) {
  auto v = JsonValue::parse(
      " { \"b\" : [1, 2, {\"x\": true}] , \"a\" : null } ").value();
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "b");  // insertion order, not sorted
  EXPECT_EQ(v.members()[1].first, "a");
  const JsonValue* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->size(), 3u);
  EXPECT_EQ(b->at(1).as_integer(), 2);
  EXPECT_TRUE(b->at(2).find("x")->as_bool());
}

TEST(JsonParse, RoundTripsCompactRendering) {
  const std::string text =
      "{\"a\":[1,2.5,\"s\"],\"b\":{\"c\":true,\"d\":null}}";
  auto v = JsonValue::parse(text);
  ASSERT_TRUE(v.is_ok()) << v.status().to_string();
  EXPECT_EQ(v.value().to_string(), text);
}

TEST(JsonParse, StringEscapesAndUnicode) {
  auto v = JsonValue::parse("\"a\\n\\t\\\"\\\\\\/\\u0041\"").value();
  EXPECT_EQ(v.as_string(), "a\n\t\"\\/A");
  // Surrogate pair: U+1F600 encodes as 4 UTF-8 bytes.
  EXPECT_EQ(JsonValue::parse("\"\\uD83D\\uDE00\"").value().as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParse, TruncatedInputIsParseError) {
  for (const char* text :
       {"", "{", "[1,", "{\"a\":", "\"unterminated", "tru", "-"}) {
    auto v = JsonValue::parse(text);
    ASSERT_FALSE(v.is_ok()) << "accepted: " << text;
    EXPECT_EQ(v.status().code(), StatusCode::kParseError);
  }
}

TEST(JsonParse, TrailingGarbageRejected) {
  auto v = JsonValue::parse("{} extra");
  ASSERT_FALSE(v.is_ok());
  EXPECT_NE(v.status().message().find("trailing"), std::string::npos);
}

TEST(JsonParse, DuplicateObjectKeyRejected) {
  auto v = JsonValue::parse("{\"a\":1,\"a\":2}");
  ASSERT_FALSE(v.is_ok());
  EXPECT_NE(v.status().message().find("duplicate object key"),
            std::string::npos);
}

TEST(JsonParse, ErrorsNameTheBytePosition) {
  auto v = JsonValue::parse("[1, x]");
  ASSERT_FALSE(v.is_ok());
  EXPECT_NE(v.status().message().find("at byte 4"), std::string::npos);
}

TEST(JsonParse, NestingDepthIsCapped) {
  // 64 levels parse; 100 must be rejected, not overflow the stack.
  std::string deep_ok(64, '[');
  deep_ok += "1";
  deep_ok += std::string(64, ']');
  EXPECT_TRUE(JsonValue::parse(deep_ok).is_ok());
  std::string too_deep(100, '[');
  too_deep += "1";
  too_deep += std::string(100, ']');
  auto v = JsonValue::parse(too_deep);
  ASSERT_FALSE(v.is_ok());
  EXPECT_NE(v.status().message().find("nesting too deep"), std::string::npos);
}

TEST(JsonParse, ControlCharacterInStringRejected) {
  auto v = JsonValue::parse("\"a\nb\"");
  ASSERT_FALSE(v.is_ok());
  EXPECT_NE(v.status().message().find("control character"),
            std::string::npos);
}

TEST(Timer, StopWatchIsMonotonicNonNegative) {
  StopWatch watch;
  double a = watch.elapsed_ms();
  double b = watch.elapsed_ms();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  watch.restart();
  EXPECT_GE(watch.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace qfs
