// Tests for the unified compile service: the wire error taxonomy and its
// exit-code contract, CompileRequest/CompileResponse JSON codecs, request
// validation against hostile input, CompileService execution semantics
// (deadlines, size limits, cache interaction, offline equivalence), and
// cross-request concurrency over one shared cache (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "device/device.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "service/api.h"
#include "service/flags.h"
#include "service/service.h"

namespace qfs::service {
namespace {

const char* kBellQasm =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[3];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n";

CompileRequest bell_request() {
  CompileRequest req;
  req.qasm = kBellQasm;
  req.options.compute_latency = true;
  return req;
}

// ---------------------------------------------------------------------------
// Error taxonomy: names and exit codes are a frozen wire contract.
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomy, NamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidRequest),
               "invalid_request");
  EXPECT_STREQ(error_code_name(ErrorCode::kParseError), "parse_error");
  EXPECT_STREQ(error_code_name(ErrorCode::kCompileFailed), "compile_failed");
  EXPECT_STREQ(error_code_name(ErrorCode::kLintError), "lint_error");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(ErrorTaxonomy, ExitCodesMatchTheQfscContract) {
  // 1 = unusable input, 2 = compile failure, 3 = lint errors: pinned since
  // the pre-service qfsc; the service-only codes extend without renumbering.
  EXPECT_EQ(exit_code_for(ErrorCode::kOk), 0);
  EXPECT_EQ(exit_code_for(ErrorCode::kInvalidRequest), 1);
  EXPECT_EQ(exit_code_for(ErrorCode::kParseError), 1);
  EXPECT_EQ(exit_code_for(ErrorCode::kCompileFailed), 2);
  EXPECT_EQ(exit_code_for(ErrorCode::kLintError), 3);
  EXPECT_EQ(exit_code_for(ErrorCode::kDeadlineExceeded), 4);
  EXPECT_EQ(exit_code_for(ErrorCode::kResourceExhausted), 5);
  EXPECT_EQ(exit_code_for(ErrorCode::kInternal), 6);
}

TEST(ErrorTaxonomy, NamesRoundTrip) {
  for (ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidRequest, ErrorCode::kParseError,
        ErrorCode::kCompileFailed, ErrorCode::kLintError,
        ErrorCode::kDeadlineExceeded, ErrorCode::kResourceExhausted,
        ErrorCode::kInternal}) {
    ErrorCode back = ErrorCode::kInternal;
    ASSERT_TRUE(error_code_from_name(error_code_name(code), back));
    EXPECT_EQ(back, code);
  }
  ErrorCode out;
  EXPECT_FALSE(error_code_from_name("no_such_code", out));
}

// ---------------------------------------------------------------------------
// Request JSON codec.
// ---------------------------------------------------------------------------

TEST(RequestCodec, RoundTripsNonDefaultFields) {
  CompileRequest req;
  req.id = "req-7";
  req.mode = RequestMode::kVerify;
  req.qasm = kBellQasm;
  req.source_name = "bell.qasm";
  req.device = "line:20";
  req.calibration = "# cal\n";
  req.fault_spec = "q3:dead";
  req.options.placer = "degree-match";
  req.options.router = "lookahead";
  req.options.sabre_refinement_rounds = 3;
  req.options.compute_latency = true;
  req.pipeline = "direct";
  req.seed = 7;
  req.max_attempts = 2;
  req.recommend = true;
  req.crosstalk_safe = true;
  req.emit_qasm = true;
  req.emit_timed = true;
  req.want_digest = false;
  req.verify_artifact = true;
  req.cache_policy = CachePolicy::kBypass;
  req.deadline_ms = 1500.0;

  auto decoded = request_from_json(request_to_json(req));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const CompileRequest& back = decoded.value();
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.mode, req.mode);
  EXPECT_EQ(back.qasm, req.qasm);
  EXPECT_EQ(back.source_name, req.source_name);
  EXPECT_EQ(back.device, req.device);
  EXPECT_EQ(back.calibration, req.calibration);
  EXPECT_EQ(back.fault_spec, req.fault_spec);
  EXPECT_EQ(back.options.placer, req.options.placer);
  EXPECT_EQ(back.options.router, req.options.router);
  EXPECT_EQ(back.options.sabre_refinement_rounds,
            req.options.sabre_refinement_rounds);
  EXPECT_EQ(back.options.compute_latency, req.options.compute_latency);
  EXPECT_EQ(back.pipeline, req.pipeline);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.max_attempts, req.max_attempts);
  EXPECT_EQ(back.recommend, req.recommend);
  EXPECT_EQ(back.crosstalk_safe, req.crosstalk_safe);
  EXPECT_EQ(back.emit_qasm, req.emit_qasm);
  EXPECT_EQ(back.emit_timed, req.emit_timed);
  EXPECT_EQ(back.want_digest, req.want_digest);
  EXPECT_EQ(back.verify_artifact, req.verify_artifact);
  EXPECT_EQ(back.cache_policy, req.cache_policy);
  EXPECT_DOUBLE_EQ(back.deadline_ms, req.deadline_ms);
}

TEST(RequestCodec, BorrowedCircuitIsRenderedToQasm) {
  auto parsed = qasm::parse(kBellQasm);
  ASSERT_TRUE(parsed.is_ok());
  CompileRequest req;
  req.circuit = &parsed.value();
  JsonValue json = request_to_json(req);
  const JsonValue* qasm_member = json.find("qasm");
  ASSERT_NE(qasm_member, nullptr);
  EXPECT_EQ(qasm_member->as_string(), qasm::to_qasm(parsed.value()));
}

TEST(RequestCodec, UnknownFieldRejectedWithSuggestion) {
  auto r = parse_request_line("{\"qasm\":\"x\",\"plaser\":\"trivial\"}");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("unknown request field 'plaser'"),
            std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("placer"), std::string::npos);
}

TEST(RequestCodec, WrongFieldTypeNamesTheField) {
  auto r = parse_request_line("{\"qasm\":\"x\",\"seed\":\"not-a-number\"}");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("'seed'"), std::string::npos);
}

TEST(RequestCodec, TruncatedLineIsParseError) {
  auto r = parse_request_line("{\"qasm\":\"OPENQASM");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(RequestCodec, RequiresExactlyOneSource) {
  EXPECT_FALSE(parse_request_line("{}").is_ok());
  EXPECT_FALSE(
      parse_request_line("{\"qasm\":\"x\",\"qasm_path\":\"a.qasm\"}")
          .is_ok());
  EXPECT_TRUE(parse_request_line("{\"qasm\":\"x\"}").is_ok());
}

TEST(RequestCodec, RejectsOutOfRangeValues) {
  EXPECT_FALSE(
      parse_request_line("{\"qasm\":\"x\",\"max_attempts\":0}").is_ok());
  EXPECT_FALSE(
      parse_request_line("{\"qasm\":\"x\",\"deadline_ms\":-5}").is_ok());
  EXPECT_FALSE(parse_request_line("{\"qasm\":\"x\",\"seed\":-1}").is_ok());
  EXPECT_FALSE(
      parse_request_line("{\"qasm\":\"x\",\"mode\":\"transpile\"}").is_ok());
}

// ---------------------------------------------------------------------------
// Response JSON codec.
// ---------------------------------------------------------------------------

TEST(ResponseCodec, SuccessRoundTripsThroughJson) {
  CompileService service;
  CompileRequest req = bell_request();
  req.id = "rt-1";
  CompileResponse resp = service.execute(req);
  ASSERT_TRUE(resp.ok()) << resp.error_message;

  auto decoded = response_from_json(response_to_json(resp));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const CompileResponse& back = decoded.value();
  EXPECT_EQ(back.id, "rt-1");
  EXPECT_EQ(back.code, ErrorCode::kOk);
  EXPECT_TRUE(back.has_mapping);
  EXPECT_EQ(back.device_name, resp.device_name);
  EXPECT_EQ(back.placer_used, resp.placer_used);
  EXPECT_EQ(back.seed_used, resp.seed_used);
  EXPECT_EQ(back.mapping.gates_after, resp.mapping.gates_after);
  EXPECT_EQ(back.mapping.swaps_inserted, resp.mapping.swaps_inserted);
  EXPECT_EQ(back.mapped_digest, resp.mapped_digest);
  EXPECT_EQ(back.cache_hit, resp.cache_hit);
}

TEST(ResponseCodec, ErrorResponseCarriesCodeAndId) {
  JsonValue err = error_response_json(ErrorCode::kResourceExhausted,
                                      "admission queue full", "c-3");
  EXPECT_EQ(err.find("id")->as_string(), "c-3");
  EXPECT_EQ(err.find("ok")->as_bool(), false);
  EXPECT_EQ(err.find("code")->as_string(), "resource_exhausted");
  EXPECT_EQ(err.find("error")->as_string(), "admission queue full");
}

// ---------------------------------------------------------------------------
// Shared request flags (the deduped --jobs/--cache-dir/... parser).
// ---------------------------------------------------------------------------

TEST(RequestFlags, LenientScanPicksOutSharedFlags) {
  const char* argv[] = {"bench", "--whatever", "--jobs", "8",
                        "--seed", "99",        "--placer", "annealing"};
  RequestFlagValues flags;
  ASSERT_TRUE(
      parse_request_flags(8, const_cast<char**>(argv), flags).is_ok());
  EXPECT_EQ(flags.jobs, 8);
  EXPECT_TRUE(flags.jobs_set);
  EXPECT_EQ(flags.seed, 99u);
  EXPECT_EQ(flags.placer, "annealing");
  EXPECT_FALSE(flags.router_set);
  EXPECT_EQ(flags.router, "trivial");  // default untouched
}

TEST(RequestFlags, MalformedValueIsAnError) {
  const char* argv[] = {"bench", "--jobs", "-3"};
  RequestFlagValues flags;
  qfs::Status status = parse_request_flags(3, const_cast<char**>(argv), flags);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.message(), "bad --jobs value '-3'");
}

TEST(RequestFlags, SuggestsNearMissFlags) {
  EXPECT_EQ(suggest_flag("--jbos", shared_request_flags()), "--jobs");
  EXPECT_EQ(suggest_flag("--cachedir", shared_request_flags()),
            "--cache-dir");
  EXPECT_EQ(suggest_flag("--zzzzzzzz", shared_request_flags()), "");
}

// ---------------------------------------------------------------------------
// CompileService execution semantics.
// ---------------------------------------------------------------------------

TEST(Service, CompilesInlineQasm) {
  CompileService service;
  CompileResponse resp = service.execute(bell_request());
  ASSERT_TRUE(resp.ok()) << resp.error_message;
  EXPECT_TRUE(resp.has_mapping);
  EXPECT_EQ(resp.device_name, "surface-17");
  EXPECT_GE(resp.mapping.gates_after, resp.mapping.gates_before);
  EXPECT_EQ(resp.mapped_digest.size(), 32u);  // hash128 hex
  EXPECT_FALSE(resp.cache_hit);
}

TEST(Service, VerifyArtifactPassesOnHealthyCompiles) {
  CompileService service;
  CompileRequest req = bell_request();
  req.verify_artifact = true;
  req.emit_timed = true;  // the timed program is validated too (QFS108)
  CompileResponse resp = service.execute(req);
  ASSERT_TRUE(resp.ok()) << resp.error_message;
  EXPECT_TRUE(resp.has_mapping);
  EXPECT_TRUE(resp.diagnostics.empty());
  EXPECT_FALSE(resp.timed_text.empty());

  // Both pipelines honor the flag.
  req.pipeline = "direct";
  resp = service.execute(req);
  ASSERT_TRUE(resp.ok()) << resp.error_message;
  EXPECT_TRUE(resp.diagnostics.empty());
}

TEST(Service, QasmParseErrorIsTyped) {
  CompileService service;
  CompileRequest req;
  req.qasm = "qreg q[2];\nnot_a_gate q[0];\n";
  CompileResponse resp = service.execute(req);
  EXPECT_EQ(resp.code, ErrorCode::kParseError);
  EXPECT_FALSE(resp.error_message.empty());
  EXPECT_FALSE(resp.has_mapping);
}

TEST(Service, UnknownDeviceIsInvalidRequest) {
  CompileService service;
  CompileRequest req = bell_request();
  req.device = "hypercube:9";
  CompileResponse resp = service.execute(req);
  EXPECT_EQ(resp.code, ErrorCode::kInvalidRequest);
}

TEST(Service, UnknownPlacerSuggestsAlternativeOnDirectPipeline) {
  CompileService service;
  CompileRequest req = bell_request();
  req.pipeline = "direct";
  req.options.placer = "anealing";
  CompileResponse resp = service.execute(req);
  EXPECT_EQ(resp.code, ErrorCode::kInvalidRequest);
  EXPECT_NE(resp.error_message.find("annealing"), std::string::npos)
      << resp.error_message;
}

TEST(Service, ResilientPipelineSalvagesUnknownPlacer) {
  // The fallback ladder has always turned an unknown strategy into a
  // successful compile on safer options; the service must not reject it
  // up front and break that contract.
  CompileService service;
  CompileRequest req = bell_request();
  req.pipeline = "resilient";
  req.options.placer = "bogus";
  CompileResponse resp = service.execute(req);
  ASSERT_TRUE(resp.ok()) << resp.error_message;
  EXPECT_NE(resp.attempt_log.find("mapper aborted"), std::string::npos)
      << resp.attempt_log;
}

TEST(Service, OversizedSourceIsResourceExhausted) {
  ServiceConfig config;
  config.max_source_bytes = 16;
  CompileService service(config);
  CompileResponse resp = service.execute(bell_request());
  EXPECT_EQ(resp.code, ErrorCode::kResourceExhausted);
}

TEST(Service, ZeroDeadlineExpiresBeforeCompiling) {
  CompileService service;
  CompileRequest req = bell_request();
  req.deadline_ms = 0.0;  // contract: already expired
  CompileResponse resp = service.execute(req);
  EXPECT_EQ(resp.code, ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(resp.has_mapping);
}

TEST(Service, TooWideCircuitFailsCompilation) {
  CompileService service;
  CompileRequest req;
  req.qasm = "qreg q[40];\nh q[39];\n";  // surface-17 has 17 qubits
  CompileResponse resp = service.execute(req);
  EXPECT_EQ(resp.code, ErrorCode::kCompileFailed);
  EXPECT_NE(resp.error_message.find("resource_exhausted"),
            std::string::npos);
}

TEST(Service, LintModeReportsParseDiagnostics) {
  CompileService service;
  CompileRequest req;
  req.mode = RequestMode::kLint;
  req.qasm = "qreg q[2];\nnot_a_gate q[0];\n";
  CompileResponse resp = service.execute(req);
  EXPECT_EQ(resp.code, ErrorCode::kLintError);
  ASSERT_FALSE(resp.diagnostics.empty());
  EXPECT_EQ(resp.diagnostics[0].code, "QFS100");
}

TEST(Service, LintModeCleanCircuitIsOk) {
  CompileService service;
  CompileRequest req = bell_request();
  req.mode = RequestMode::kLint;
  CompileResponse resp = service.execute(req);
  EXPECT_EQ(resp.code, ErrorCode::kOk) << resp.error_message;
  EXPECT_FALSE(resp.has_mapping);
}

TEST(Service, SameSeedIsDeterministicAcrossInstances) {
  CompileService a, b;
  CompileRequest req = bell_request();
  req.seed = 1234;
  CompileResponse ra = a.execute(req);
  CompileResponse rb = b.execute(req);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.mapped_digest, rb.mapped_digest);
  EXPECT_EQ(mapping_metrics_json(ra).to_string(),
            mapping_metrics_json(rb).to_string());
}

TEST(Service, DirectPipelineUsesCacheAcrossRequests) {
  cache::CompileCache cache{cache::CacheConfig{}};
  ServiceConfig config;
  config.cache = &cache;
  CompileService service(config);

  CompileRequest req = bell_request();
  req.pipeline = "direct";
  CompileResponse cold = service.execute(req);
  ASSERT_TRUE(cold.ok()) << cold.error_message;
  EXPECT_FALSE(cold.cache_hit);

  CompileResponse warm = service.execute(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.mapped_digest, cold.mapped_digest);

  // kBypass must neither read nor count as a hit.
  req.cache_policy = CachePolicy::kBypass;
  CompileResponse bypass = service.execute(req);
  ASSERT_TRUE(bypass.ok());
  EXPECT_FALSE(bypass.cache_hit);
  EXPECT_EQ(bypass.mapped_digest, cold.mapped_digest);
}

TEST(Service, ResilientPipelineMemoHitsOnRepeat) {
  cache::CompileCache cache{cache::CacheConfig{}};
  ServiceConfig config;
  config.cache = &cache;
  CompileService service(config);

  CompileRequest req = bell_request();
  CompileResponse cold = service.execute(req);
  ASSERT_TRUE(cold.ok()) << cold.error_message;
  EXPECT_FALSE(cold.cache_hit);
  CompileResponse warm = service.execute(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.mapped_digest, cold.mapped_digest);
}

TEST(Service, BorrowedCircuitAndDeviceMatchWireRequest) {
  // The in-process fast path (what bench::run_suite uses) must produce the
  // same bytes as the same request arriving as QASM text over the wire.
  auto parsed = qasm::parse(kBellQasm);
  ASSERT_TRUE(parsed.is_ok());
  device::Device dev = device::surface17_device();
  CompileService service;

  CompileRequest borrowed;
  borrowed.circuit = &parsed.value();
  borrowed.device_obj = &dev;
  borrowed.options.compute_latency = true;

  CompileResponse from_ptr = service.execute(borrowed);
  CompileResponse from_text = service.execute(bell_request());
  ASSERT_TRUE(from_ptr.ok()) << from_ptr.error_message;
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(mapping_metrics_json(from_ptr).to_string(),
            mapping_metrics_json(from_text).to_string());
}

// ---------------------------------------------------------------------------
// Cross-request concurrency over one shared cache (run under TSan in CI).
// ---------------------------------------------------------------------------

TEST(Service, ConcurrentRequestsShareOneCacheSafely) {
  cache::CompileCache cache{cache::CacheConfig{}};
  ServiceConfig config;
  config.cache = &cache;
  CompileService service(config);

  const char* sources[] = {
      kBellQasm,
      "qreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[2],q[3];\n",
      "qreg q[2];\nrz(pi/4) q[0];\ncx q[0],q[1];\n",
  };
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 12;
  std::atomic<int> failures{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        CompileRequest req;
        req.qasm = sources[(t + i) % 3];
        req.options.compute_latency = true;
        req.pipeline = (i % 2 == 0) ? "direct" : "resilient";
        CompileResponse resp = service.execute(req);
        if (!resp.ok()) failures.fetch_add(1);
        if (resp.cache_hit) hits.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(hits.load(), 0);  // the shared cache must actually get warm
  EXPECT_GT(cache.stats().memory_hits, 0u);
}

}  // namespace
}  // namespace qfs::service
