// Backend registry and device zoo: spec grammar, registry resolution with
// did-you-mean, per-backend topology invariants, native-set closure under
// decomposition, calibration round-trips, and the acceptance gate — the
// paper's 200-circuit suite compiled through compile_resilient on every
// zoo backend with each artifact passing translation validation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "analysis/equiv.h"
#include "backends/registry.h"
#include "backends/spec.h"
#include "compiler/decompose.h"
#include "device/calibration.h"
#include "mapper/pipeline.h"
#include "support/rng.h"
#include "workloads/suite.h"

namespace qfs::backends {
namespace {

using circuit::Circuit;
using circuit::GateKind;

// ---- Spec grammar ----------------------------------------------------------

TEST(DeviceSpec, ParsesBareNamePositionalAndNamedArgs) {
  auto bare = parse_device_spec("surface17");
  ASSERT_TRUE(bare.is_ok());
  EXPECT_EQ(bare.value().name, "surface17");
  EXPECT_TRUE(bare.value().args.empty());

  auto positional = parse_device_spec("trapped_ion(20)");
  ASSERT_TRUE(positional.is_ok());
  ASSERT_EQ(positional.value().args.size(), 1u);
  EXPECT_EQ(positional.value().args[0].name, "");
  EXPECT_EQ(positional.value().args[0].value, 20.0);

  auto named = parse_device_spec(" heavy_hex( rows = 3 , cols = 9 ) ");
  ASSERT_TRUE(named.is_ok());
  ASSERT_EQ(named.value().args.size(), 2u);
  EXPECT_EQ(named.value().args[0].name, "rows");
  EXPECT_EQ(named.value().args[1].name, "cols");

  auto mixed = parse_device_spec("neutral_atom(4,5,radius=1.5)");
  ASSERT_TRUE(mixed.is_ok());
  EXPECT_EQ(mixed.value().args.size(), 3u);
}

TEST(DeviceSpec, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "Surface17", "line(", "line)", "line(3", "line(3,)", "line(,3)",
        "line(n=)", "line(n=x)", "line(3)x", "full(n=2,2)", "grid(rows==2)",
        "line(1e999)"}) {
    EXPECT_FALSE(parse_device_spec(bad).is_ok()) << "spec: '" << bad << "'";
  }
}

TEST(DeviceSpec, CanonicalRenderingRoundTrips) {
  auto spec = parse_device_spec("neutral_atom(4,5,radius=2.5)");
  ASSERT_TRUE(spec.is_ok());
  // spec_to_string names every argument; numbers render shortest-exact.
  EXPECT_EQ(format_spec_value(4.0), "4");
  EXPECT_EQ(format_spec_value(2.5), "2.5");
  auto dev = make_device("neutral_atom(4,5,radius=2.5)");
  ASSERT_TRUE(dev.is_ok());
  EXPECT_EQ(dev.value().spec(), "neutral_atom(rows=4,cols=5,radius=2.5)");
}

// ---- Registry resolution ---------------------------------------------------

TEST(BackendRegistry, ListsEveryBackendWithParams) {
  const auto& entries = BackendRegistry::global().entries();
  std::set<std::string> names;
  for (const auto& e : entries) names.insert(e.name);
  for (const char* expected :
       {"surface7", "surface17", "surface97", "heavyhex27", "line", "grid",
        "full", "heavy_hex", "sycamore", "trapped_ion", "neutral_atom"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
  const BackendInfo* ion = BackendRegistry::global().find("trapped_ion");
  ASSERT_NE(ion, nullptr);
  ASSERT_EQ(ion->params.size(), 1u);
  EXPECT_EQ(ion->params[0].name, "ions");
  EXPECT_TRUE(ion->params[0].integer);
}

TEST(BackendRegistry, UnknownBackendGetsDidYouMean) {
  auto close = make_device("trapped_oin(8)");
  ASSERT_FALSE(close.is_ok());
  EXPECT_NE(close.status().message().find("did you mean 'trapped_ion'"),
            std::string::npos)
      << close.status().message();
  auto far = make_device("warp9");
  ASSERT_FALSE(far.is_ok());
  EXPECT_NE(far.status().message().find("unknown device"), std::string::npos);
}

TEST(BackendRegistry, ValidatesArityRangeAndIntegrality) {
  // Too many positional arguments.
  EXPECT_FALSE(make_device("trapped_ion(8,9)").is_ok());
  // Unknown parameter name.
  EXPECT_FALSE(make_device("trapped_ion(qubits=8)").is_ok());
  // Duplicate parameter (positional + named).
  EXPECT_FALSE(make_device("trapped_ion(8,ions=9)").is_ok());
  // Out of range.
  EXPECT_FALSE(make_device("trapped_ion(ions=1)").is_ok());
  EXPECT_FALSE(make_device("trapped_ion(ions=65)").is_ok());
  // Integrality.
  EXPECT_FALSE(make_device("trapped_ion(ions=8.5)").is_ok());
  // Real-valued parameters accept fractions.
  EXPECT_TRUE(make_device("neutral_atom(radius=1.42)").is_ok());
  // Parameterless backends reject arguments.
  EXPECT_FALSE(make_device("surface17(3)").is_ok());
  // heavy_hex cols must satisfy cols % 4 == 1.
  EXPECT_FALSE(make_device("heavy_hex(rows=3,cols=8)").is_ok());
}

TEST(BackendRegistry, DefaultsFillMissingParameters) {
  auto dev = make_device("trapped_ion");
  ASSERT_TRUE(dev.is_ok());
  EXPECT_EQ(dev.value().num_qubits(), 20);
  EXPECT_EQ(dev.value().spec(), "trapped_ion(ions=20)");
  auto na = make_device("neutral_atom");
  ASSERT_TRUE(na.is_ok());
  EXPECT_EQ(na.value().num_qubits(), 20);
}

TEST(BackendRegistry, LegacyNamesResolveToSeedDevices) {
  // The registry must agree with the historical hardcoded constructors.
  auto s17 = make_device("surface17");
  ASSERT_TRUE(s17.is_ok());
  EXPECT_EQ(s17.value().name(), "surface-17");
  EXPECT_EQ(s17.value().num_qubits(), 17);
  auto hh = make_device("heavyhex27");
  ASSERT_TRUE(hh.is_ok());
  EXPECT_EQ(hh.value().num_qubits(), 27);
}

// ---- Topology shape invariants ---------------------------------------------

int degree(const device::Topology& topo, int q) {
  const auto* t = topo.tables();
  return t->nbr_offsets[static_cast<std::size_t>(q) + 1] -
         t->nbr_offsets[static_cast<std::size_t>(q)];
}

TEST(DeviceZoo, HeavyHexDegreeCapAndConnectivity) {
  auto dev = make_device("heavy_hex(rows=3,cols=9)");
  ASSERT_TRUE(dev.is_ok());
  const device::Topology& topo = dev.value().topology();
  EXPECT_TRUE(topo.connected());
  // The heavy-hex property: no qubit exceeds degree 3.
  for (int q = 0; q < topo.num_qubits(); ++q) {
    EXPECT_LE(degree(topo, q), 3) << "qubit " << q;
  }
  // Row qubits dominate: 3 rows of 9 plus bridge qubits between rows.
  EXPECT_GE(topo.num_qubits(), 27);
}

TEST(DeviceZoo, SycamoreGridHasAlternatingDiagonals) {
  const int rows = 5, cols = 4;
  auto dev = make_device("sycamore(rows=5,cols=4)");
  ASSERT_TRUE(dev.is_ok());
  const device::Topology& topo = dev.value().topology();
  ASSERT_EQ(topo.num_qubits(), rows * cols);
  EXPECT_TRUE(topo.connected());
  // Grid edges plus exactly one diagonal per unit cell.
  const int grid_edges = rows * (cols - 1) + cols * (rows - 1);
  const int cells = (rows - 1) * (cols - 1);
  EXPECT_EQ(static_cast<int>(topo.edge_list().size()), grid_edges + cells);
  // Cell (0,0) has even parity: diagonal (0,0)-(1,1) present, (1,0)-(0,1)
  // absent. Cell (0,1) is odd: the opposite orientation.
  auto at = [cols](int r, int c) { return r * cols + c; };
  EXPECT_TRUE(topo.adjacent(at(0, 0), at(1, 1)));
  EXPECT_FALSE(topo.adjacent(at(1, 0), at(0, 1)));
  EXPECT_TRUE(topo.adjacent(at(1, 1), at(0, 2)));
  EXPECT_FALSE(topo.adjacent(at(0, 1), at(1, 2)));
}

TEST(DeviceZoo, TrappedIonIsCompleteGraph) {
  auto dev = make_device("trapped_ion(ions=8)");
  ASSERT_TRUE(dev.is_ok());
  const device::Topology& topo = dev.value().topology();
  ASSERT_EQ(topo.num_qubits(), 8);
  EXPECT_EQ(static_cast<int>(topo.edge_list().size()), 8 * 7 / 2);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_TRUE(topo.adjacent(a, b));
    }
  }
}

TEST(DeviceZoo, NeutralAtomRadiusControlsConnectivity) {
  // radius 1: nearest neighbours only (a plain grid).
  auto near = make_device("neutral_atom(rows=3,cols=3,radius=1)");
  ASSERT_TRUE(near.is_ok());
  EXPECT_EQ(static_cast<int>(near.value().topology().edge_list().size()), 12);
  // radius 1.5 >= sqrt(2): diagonals join.
  auto diag = make_device("neutral_atom(rows=3,cols=3,radius=1.5)");
  ASSERT_TRUE(diag.is_ok());
  const device::Topology& topo = diag.value().topology();
  EXPECT_EQ(static_cast<int>(topo.edge_list().size()), 12 + 8);
  EXPECT_TRUE(topo.adjacent(0, 4));   // (0,0)-(1,1), distance sqrt(2)
  EXPECT_FALSE(topo.adjacent(0, 2));  // (0,0)-(0,2), distance 2
  // radius 2 adds the straight-line next-nearest pairs.
  auto far = make_device("neutral_atom(rows=3,cols=3,radius=2)");
  ASSERT_TRUE(far.is_ok());
  EXPECT_TRUE(far.value().topology().adjacent(0, 2));
}

// ---- Cost models -----------------------------------------------------------

TEST(DeviceZoo, TrappedIonChainLengthDegradesFidelity) {
  auto small = make_device("trapped_ion(ions=4)");
  auto large = make_device("trapped_ion(ions=40)");
  ASSERT_TRUE(small.is_ok());
  ASSERT_TRUE(large.is_ok());
  // Longer chains: slower and less faithful two-qubit gates.
  EXPECT_GT(small.value().error_model().two_qubit_fidelity(),
            large.value().error_model().two_qubit_fidelity());
  EXPECT_LT(small.value().error_model().two_qubit_duration_ns(),
            large.value().error_model().two_qubit_duration_ns());
  // Shuttling penalty: distant ion pairs are worse than adjacent ones.
  const device::ErrorModel& em = large.value().error_model();
  EXPECT_GT(em.edge_fidelity(0, 1), em.edge_fidelity(0, 39));
}

TEST(DeviceZoo, NeutralAtomLongRangePairsPayFidelityPenalty) {
  auto dev = make_device("neutral_atom(rows=3,cols=3,radius=2)");
  ASSERT_TRUE(dev.is_ok());
  const device::ErrorModel& em = dev.value().error_model();
  // (0,0)-(0,1) is distance 1; (0,0)-(0,2) is distance 2.
  EXPECT_GT(em.edge_fidelity(0, 1), em.edge_fidelity(0, 2));
}

// ---- Native-set closure under decomposition --------------------------------

Circuit every_gate_kind_circuit() {
  Circuit c(3, "every-kind");
  c.i(0).x(0).y(1).z(2).h(0).s(1).sdg(2).t(0).tdg(1).sx(2).sxdg(0);
  c.rx(0.3, 0).ry(0.4, 1).rz(0.5, 2).p(0.6, 0).u3(0.1, 0.2, 0.3, 1);
  c.cx(0, 1).cy(1, 2).cz(0, 2).cp(0.7, 0, 1).swap(1, 2);
  c.ccx(0, 1, 2).ccz(0, 1, 2).cswap(0, 1, 2);
  c.measure(0).reset(1).barrier({0, 1, 2});
  return c;
}

TEST(DeviceZoo, EveryBackendGateSetIsClosedUnderDecomposition) {
  const Circuit all_kinds = every_gate_kind_circuit();
  for (const auto& entry : BackendRegistry::global().entries()) {
    auto dev = make_device(entry.name);
    ASSERT_TRUE(dev.is_ok()) << entry.name;
    Circuit lowered =
        compiler::decompose_to_gateset(all_kinds, dev.value().gateset());
    EXPECT_TRUE(dev.value().gateset().supports_circuit(lowered))
        << "backend " << entry.name << " gateset "
        << dev.value().gateset().name();
  }
}

// ---- Calibration round-trip ------------------------------------------------

TEST(DeviceZoo, DefaultCalibrationRoundTripsPerBackend) {
  for (const char* spec :
       {"heavy_hex(rows=3,cols=9)", "sycamore(rows=5,cols=4)",
        "trapped_ion(ions=20)", "neutral_atom(rows=4,cols=5,radius=1.5)"}) {
    auto dev = make_device(spec);
    ASSERT_TRUE(dev.is_ok()) << spec;
    const device::Device& d = dev.value();
    std::string text = default_calibration_text(d);
    auto parsed = device::parse_calibration(text, d.num_qubits());
    ASSERT_TRUE(parsed.is_ok()) << spec << ": " << parsed.status().message();
    const device::ErrorModel& orig = d.error_model();
    const device::ErrorModel& back = parsed.value();
    // calibration_to_text prints 6 decimals; allow that quantisation.
    const double tol = 5e-7;
    EXPECT_NEAR(back.single_qubit_fidelity(), orig.single_qubit_fidelity(),
                tol);
    EXPECT_NEAR(back.two_qubit_fidelity(), orig.two_qubit_fidelity(), tol);
    for (const auto& [a, b] : d.topology().edge_list()) {
      EXPECT_NEAR(back.edge_fidelity(a, b), orig.edge_fidelity(a, b), tol)
          << spec << " edge " << a << "-" << b;
    }
    for (int q = 0; q < d.num_qubits(); ++q) {
      EXPECT_NEAR(back.qubit_fidelity(q), orig.qubit_fidelity(q), tol)
          << spec << " qubit " << q;
    }
  }
}

// ---- Acceptance: the paper suite on every zoo backend ----------------------

/// Compile the full 200-circuit paper suite (capped to the smallest zoo
/// device) through compile_resilient and validate every artifact. Returns
/// the first failure rendered, or "".
std::string compile_and_validate_suite(const device::Device& device) {
  workloads::SuiteOptions options;
  options.max_qubits = 17;  // fits the 20-qubit zoo floor after placement
  options.max_gates = 600;
  qfs::Rng suite_rng(2022);
  std::vector<workloads::Benchmark> suite =
      workloads::make_suite(options, suite_rng);
  mapper::ResilientOptions resilient;
  resilient.base.placer = "degree-match";
  resilient.base.router = "lookahead";
  for (std::size_t i = 0; i < suite.size(); ++i) {
    resilient.seed = qfs::derive_seed(2022, i);
    auto result = mapper::compile_resilient(suite[i].circuit, device,
                                            resilient, nullptr);
    if (!result.is_ok()) {
      return suite[i].name + ": " + result.status().message();
    }
    analysis::TranslationArtifact artifact;
    artifact.mapped = &result.value().mapping.mapped;
    artifact.initial_layout = result.value().mapping.initial_layout;
    artifact.final_layout = result.value().mapping.final_layout;
    artifact.swaps_inserted = result.value().mapping.swaps_inserted;
    std::vector<analysis::Diagnostic> findings = analysis::validate_translation(
        suite[i].circuit, device, artifact);
    if (!findings.empty()) {
      return suite[i].name + ":\n" + analysis::render_diagnostics(findings);
    }
  }
  return "";
}

TEST(DeviceZooAcceptance, HeavyHexCompilesAndValidatesPaperSuite) {
  auto dev = make_device("heavy_hex(rows=3,cols=9)");
  ASSERT_TRUE(dev.is_ok());
  EXPECT_EQ(compile_and_validate_suite(dev.value()), "");
}

TEST(DeviceZooAcceptance, SycamoreCompilesAndValidatesPaperSuite) {
  auto dev = make_device("sycamore(rows=5,cols=4)");
  ASSERT_TRUE(dev.is_ok());
  EXPECT_EQ(compile_and_validate_suite(dev.value()), "");
}

TEST(DeviceZooAcceptance, TrappedIonCompilesAndValidatesPaperSuite) {
  auto dev = make_device("trapped_ion(ions=20)");
  ASSERT_TRUE(dev.is_ok());
  EXPECT_EQ(compile_and_validate_suite(dev.value()), "");
}

TEST(DeviceZooAcceptance, NeutralAtomCompilesAndValidatesPaperSuite) {
  auto dev = make_device("neutral_atom(rows=4,cols=5,radius=1.5)");
  ASSERT_TRUE(dev.is_ok());
  EXPECT_EQ(compile_and_validate_suite(dev.value()), "");
}

}  // namespace
}  // namespace qfs::backends
