#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "device/device.h"
#include "device/faults.h"
#include "device/fidelity.h"
#include "graph/algorithms.h"
#include "mapper/pipeline.h"
#include "mapper/routing.h"
#include "workloads/algorithms.h"

namespace qfs {
namespace {

using device::DegradedDevice;
using device::Device;
using device::FaultInjector;
using device::FaultSpec;
using device::SubTopology;
using device::Topology;

// ---------------------------------------------------------------------------
// Graph: induced subgraphs and largest component
// ---------------------------------------------------------------------------

TEST(InducedSubgraph, PreservesEdgesAndWeights) {
  graph::Graph g(5);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(2, 3, 4.0);
  g.add_edge(3, 4, 5.0);
  graph::Graph sub = graph::induced_subgraph(g, {1, 2, 4});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 1);  // only {1,2} survives
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(sub.edge_weight(0, 1), 3.0);
  EXPECT_FALSE(sub.has_edge(1, 2));
}

TEST(InducedSubgraph, KeepOrderDefinesNewIds) {
  graph::Graph g(4);
  g.add_edge(0, 3, 7.0);
  graph::Graph sub = graph::induced_subgraph(g, {3, 0});
  ASSERT_EQ(sub.num_nodes(), 2);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(sub.edge_weight(0, 1), 7.0);
}

TEST(InducedSubgraph, RejectsBadKeepList) {
  graph::Graph g(3);
  EXPECT_THROW(graph::induced_subgraph(g, {0, 0}), qfs::AssertionError);
  EXPECT_THROW(graph::induced_subgraph(g, {0, 3}), qfs::AssertionError);
  EXPECT_THROW(graph::induced_subgraph(g, {-1}), qfs::AssertionError);
}

TEST(LargestComponent, PicksBiggest) {
  graph::Graph g(7);
  g.add_edge(0, 1);           // component {0,1}
  g.add_edge(2, 3);           // component {2,3,4,5}
  g.add_edge(3, 4);
  g.add_edge(4, 5);           // node 6 isolated
  std::vector<graph::Node> big = graph::largest_component_nodes(g);
  EXPECT_EQ(big, (std::vector<graph::Node>{2, 3, 4, 5}));
}

TEST(LargestComponent, TieBreaksTowardSmallestNode) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(graph::largest_component_nodes(g),
            (std::vector<graph::Node>{0, 1}));
}

TEST(LargestComponent, EmptyGraph) {
  EXPECT_TRUE(graph::largest_component_nodes(graph::Graph()).empty());
}

// ---------------------------------------------------------------------------
// Topology: induced subtopologies
// ---------------------------------------------------------------------------

TEST(SubTopologyTest, InducedSubtopologyMapsBothWays) {
  Topology line = device::line_topology(5);
  SubTopology sub = device::induced_subtopology(line, {1, 2, 3}, "mid");
  EXPECT_EQ(sub.topology.name(), "mid");
  EXPECT_EQ(sub.topology.num_qubits(), 3);
  EXPECT_TRUE(sub.topology.adjacent(0, 1));
  EXPECT_TRUE(sub.topology.adjacent(1, 2));
  EXPECT_FALSE(sub.topology.adjacent(0, 2));
  EXPECT_EQ(sub.to_parent, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sub.from_parent, (std::vector<int>{-1, 0, 1, 2, -1}));
}

TEST(SubTopologyTest, LargestConnectedComponentOfSplitLine) {
  // Removing qubit 1 from line:6 splits it into {0} and {2,3,4,5}.
  Topology line = device::line_topology(6);
  SubTopology healthy = device::induced_subtopology(line, {0, 2, 3, 4, 5});
  SubTopology lcc = device::largest_connected_component(healthy.topology);
  EXPECT_EQ(lcc.topology.num_qubits(), 4);
  EXPECT_TRUE(graph::is_connected(lcc.topology.coupling()));
}

// ---------------------------------------------------------------------------
// Fault spec parsing
// ---------------------------------------------------------------------------

TEST(FaultSpecParse, FullSpecRoundTrips) {
  auto parsed = device::parse_fault_spec(
      "dead_qubits=3|17;dead_edges=0-1|4-5;dead_qubit_fraction=0.1;"
      "dead_edge_fraction=0.2;drift=0.02;seed=7");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const FaultSpec& spec = parsed.value();
  EXPECT_EQ(spec.dead_qubits, (std::vector<int>{3, 17}));
  ASSERT_EQ(spec.dead_edges.size(), 2u);
  EXPECT_EQ(spec.dead_edges[0], (std::pair<int, int>{0, 1}));
  EXPECT_DOUBLE_EQ(spec.dead_qubit_fraction, 0.1);
  EXPECT_DOUBLE_EQ(spec.dead_edge_fraction, 0.2);
  EXPECT_DOUBLE_EQ(spec.fidelity_drift, 0.02);
  EXPECT_EQ(spec.seed, 7u);

  auto again = device::parse_fault_spec(device::fault_spec_to_string(spec));
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  EXPECT_EQ(again.value().dead_qubits, spec.dead_qubits);
  EXPECT_EQ(again.value().dead_edges, spec.dead_edges);
  EXPECT_DOUBLE_EQ(again.value().fidelity_drift, spec.fidelity_drift);
  EXPECT_EQ(again.value().seed, spec.seed);
}

TEST(FaultSpecParse, RejectsMalformedInput) {
  EXPECT_FALSE(device::parse_fault_spec("wat=1").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("dead_qubits=").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("dead_qubits=a|b").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("dead_edges=3").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("dead_qubit_fraction=1.5").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("dead_edge_fraction=nan").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("drift=-0.5").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("seed=eleven").is_ok());
  EXPECT_FALSE(device::parse_fault_spec("dead_qubits").is_ok());
  // The offending pair is named.
  auto bad = device::parse_fault_spec("drift=2.0");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("drift"), std::string::npos);
}

TEST(FaultSpecParse, EmptyTextIsEmptySpec) {
  auto parsed = device::parse_fault_spec("");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().empty());
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjection, ExplicitDeadQubitDropsItAndRemaps) {
  Device line = device::line_device(5);
  FaultSpec spec;
  spec.dead_qubits = {0};
  auto degraded = FaultInjector(spec).apply(line);
  ASSERT_TRUE(degraded.is_ok()) << degraded.status().to_string();
  const DegradedDevice& dd = degraded.value();
  EXPECT_EQ(dd.device.num_qubits(), 4);
  EXPECT_EQ(dd.dead_qubits, 1);
  EXPECT_EQ(dd.stranded_qubits, 0);
  EXPECT_EQ(dd.to_parent, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(dd.from_parent, (std::vector<int>{-1, 0, 1, 2, 3}));
  EXPECT_TRUE(graph::is_connected(dd.device.topology().coupling()));
}

TEST(FaultInjection, ExplicitDeadEdgeStrandsTail) {
  // Cutting 3-4 on line:5 strands qubit 4 (healthy but disconnected).
  Device line = device::line_device(5);
  FaultSpec spec;
  spec.dead_edges = {{3, 4}};
  auto degraded = FaultInjector(spec).apply(line);
  ASSERT_TRUE(degraded.is_ok()) << degraded.status().to_string();
  EXPECT_EQ(degraded.value().device.num_qubits(), 4);
  EXPECT_EQ(degraded.value().dead_edges, 1);
  EXPECT_EQ(degraded.value().stranded_qubits, 1);
}

TEST(FaultInjection, InvalidCasualtiesRejected) {
  Device line = device::line_device(3);
  {
    FaultSpec spec;
    spec.dead_qubits = {7};
    auto r = FaultInjector(spec).apply(line);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    FaultSpec spec;
    spec.dead_edges = {{0, 2}};  // not a coupler on a line
    auto r = FaultInjector(spec).apply(line);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FaultInjection, UnsalvageableDeviceIsResourceExhausted) {
  Device line = device::line_device(3);
  FaultSpec spec;
  spec.dead_qubits = {0, 1, 2};
  auto r = FaultInjector(spec).apply(line);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FaultInjection, DeterministicForFixedSeed) {
  Device chip = device::surface97_device();
  FaultSpec spec;
  spec.dead_edge_fraction = 0.15;
  spec.dead_qubit_fraction = 0.05;
  spec.fidelity_drift = 0.02;
  spec.seed = 42;
  auto a = FaultInjector(spec).apply(chip);
  auto b = FaultInjector(spec).apply(chip);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().to_parent, b.value().to_parent);
  EXPECT_EQ(a.value().dead_edges, b.value().dead_edges);
  EXPECT_EQ(a.value().device.topology().edge_list(),
            b.value().device.topology().edge_list());
  for (int q = 0; q < a.value().device.num_qubits(); ++q) {
    EXPECT_DOUBLE_EQ(a.value().device.error_model().qubit_fidelity(q),
                     b.value().device.error_model().qubit_fidelity(q));
  }

  FaultSpec other = spec;
  other.seed = 43;
  auto c = FaultInjector(other).apply(chip);
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(a.value().device.topology().edge_list(),
            c.value().device.topology().edge_list());
}

TEST(FaultInjection, DriftOnlyLowersFidelities) {
  Device chip = device::surface17_device();
  FaultSpec spec;
  spec.fidelity_drift = 0.05;
  auto degraded = FaultInjector(spec).apply(chip);
  ASSERT_TRUE(degraded.is_ok());
  const DegradedDevice& dd = degraded.value();
  ASSERT_EQ(dd.device.num_qubits(), chip.num_qubits());
  bool any_lower = false;
  for (int q = 0; q < dd.device.num_qubits(); ++q) {
    double before = chip.error_model().qubit_fidelity(dd.to_parent[q]);
    double after = dd.device.error_model().qubit_fidelity(q);
    EXPECT_LE(after, before + 1e-12);
    EXPECT_GT(after, 0.0);
    if (after < before) any_lower = true;
  }
  for (auto [a, b] : dd.device.topology().edge_list()) {
    double before = chip.error_model().edge_fidelity(dd.to_parent[a],
                                                     dd.to_parent[b]);
    double after = dd.device.error_model().edge_fidelity(a, b);
    EXPECT_LE(after, before + 1e-12);
    if (after < before) any_lower = true;
  }
  EXPECT_TRUE(any_lower);
}

TEST(FaultInjection, ControlGroupsAreRemapped) {
  Device chip = device::line_device(4);
  chip.set_control_groups({0, 0, 1, 1});
  FaultSpec spec;
  spec.dead_qubits = {0};
  auto degraded = FaultInjector(spec).apply(chip);
  ASSERT_TRUE(degraded.is_ok());
  const DegradedDevice& dd = degraded.value();
  ASSERT_TRUE(dd.device.has_control_groups());
  EXPECT_EQ(dd.device.control_group(0), 0);  // parent qubit 1
  EXPECT_EQ(dd.device.control_group(1), 1);  // parent qubit 2
  EXPECT_EQ(dd.device.control_group(2), 1);  // parent qubit 3
}

// ---------------------------------------------------------------------------
// Resilient compilation
// ---------------------------------------------------------------------------

TEST(CompileResilient, PristineDeviceSucceedsFirstAttempt) {
  circuit::Circuit ghz = workloads::ghz(4);
  Device chip = device::surface17_device();
  mapper::CompileAttemptLog log;
  auto result = mapper::compile_resilient(ghz, chip, {}, &log);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.back().status.is_ok());
  EXPECT_TRUE(mapper::respects_connectivity(result.value().mapping.mapped,
                                            chip));
  EXPECT_TRUE(
      chip.gateset().supports_circuit(result.value().mapping.mapped));
  EXPECT_EQ(result.value().log.size(), log.size());
}

TEST(CompileResilient, FallbackLadderRecoversFromBadBaseOptions) {
  // An unknown placer makes attempt 0 abort inside the mapper; the ladder
  // must catch the contract violation and fall back instead of crashing.
  circuit::Circuit ghz = workloads::ghz(3);
  Device chip = device::line_device(4);
  mapper::ResilientOptions opts;
  opts.base.placer = "nonexistent-placer";
  mapper::CompileAttemptLog log;
  auto result = mapper::compile_resilient(ghz, chip, opts, &log);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_GE(log.size(), 2u);
  EXPECT_FALSE(log.front().status.is_ok());
  EXPECT_EQ(log.front().status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(log.back().status.is_ok());
  EXPECT_NE(result.value().options_used.placer, "nonexistent-placer");
}

TEST(CompileResilient, TooWideCircuitIsResourceExhausted) {
  circuit::Circuit ghz = workloads::ghz(6);
  Device chip = device::line_device(4);
  mapper::CompileAttemptLog log;
  auto result = mapper::compile_resilient(ghz, chip, {}, &log);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(log.empty());  // no attempt can even start
}

TEST(CompileResilient, RejectsNonPositiveMaxAttempts) {
  mapper::ResilientOptions opts;
  opts.max_attempts = 0;
  auto result =
      mapper::compile_resilient(workloads::ghz(2), device::line_device(3),
                                opts);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompileResilient, EquivalenceCheckedOnSmallDevices) {
  // line:4 is within equivalence_max_qubits, GHZ is unitary-only: the
  // winning attempt must have passed statevector equivalence.
  circuit::Circuit ghz = workloads::ghz(4);
  Device chip = device::line_device(4);
  mapper::ResilientOptions opts;
  opts.base.placer = "degree-match";
  opts.base.router = "lookahead";
  auto result = mapper::compile_resilient(ghz, chip, opts);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(mapper::respects_connectivity(result.value().mapping.mapped,
                                            chip));
}

TEST(CompileResilient, AttemptLogRendersEveryRung) {
  circuit::Circuit ghz = workloads::ghz(3);
  mapper::ResilientOptions opts;
  opts.base.placer = "nonexistent-placer";
  mapper::CompileAttemptLog log;
  auto result =
      mapper::compile_resilient(ghz, device::line_device(4), opts, &log);
  ASSERT_TRUE(result.is_ok());
  std::string text = mapper::attempt_log_to_string(log);
  EXPECT_NE(text.find("attempt 0"), std::string::npos);
  EXPECT_NE(text.find("nonexistent-placer"), std::string::npos);
  EXPECT_NE(text.find("ok"), std::string::npos);
}

// The PR's acceptance criterion: Surface-97 with 10% of its couplers dead
// still compiles, onto the largest connected healthy subgraph, with a
// validated connectivity-compliant result.
TEST(CompileResilient, Surface97WithTenPctDeadEdges) {
  Device chip = device::surface97_device();
  FaultSpec spec;
  spec.dead_edge_fraction = 0.10;
  spec.fidelity_drift = 0.02;
  spec.seed = 7;
  auto degraded = FaultInjector(spec).apply(chip);
  ASSERT_TRUE(degraded.is_ok()) << degraded.status().to_string();
  const DegradedDevice& dd = degraded.value();
  EXPECT_GE(dd.dead_edges, 1);
  EXPECT_TRUE(graph::is_connected(dd.device.topology().coupling()));

  circuit::Circuit ghz = workloads::ghz(12);
  mapper::ResilientOptions opts;
  opts.base.placer = "degree-match";
  opts.base.router = "lookahead";
  mapper::CompileAttemptLog log;
  auto result = mapper::compile_resilient(ghz, dd.device, opts, &log);
  ASSERT_TRUE(result.is_ok()) << mapper::attempt_log_to_string(log);
  EXPECT_TRUE(mapper::respects_connectivity(result.value().mapping.mapped,
                                            dd.device));
  EXPECT_TRUE(
      dd.device.gateset().supports_circuit(result.value().mapping.mapped));
  EXPECT_GT(result.value().mapping.fidelity_after, 0.0);
}

// ---------------------------------------------------------------------------
// Fidelity floor on degraded devices
// ---------------------------------------------------------------------------

// Regression: a heavily degraded device drives per-gate fidelities toward
// zero; before the kMinGateFidelity floor, log(0) = -inf made every
// downstream ratio NaN. All fidelity estimates must stay finite and
// bounded below by gate_count * log(floor).
TEST(FidelityFloor, DegradedDeviceEstimatesStayFinite) {
  Device chip = device::surface17_device();
  FaultSpec spec;
  spec.dead_edge_fraction = 0.10;
  spec.fidelity_drift = 0.999;  // near-total loss on surviving couplers
  spec.seed = 11;
  auto degraded = FaultInjector(spec).apply(chip);
  ASSERT_TRUE(degraded.is_ok()) << degraded.status().to_string();
  const Device& dev = degraded.value().device;

  circuit::Circuit ghz = workloads::ghz(8);
  Rng rng(2022);
  mapper::MappingOptions opts;
  opts.placer = "degree-match";
  opts.router = "lookahead";
  mapper::MappingResult result = mapper::map_circuit(ghz, dev, opts, rng);

  double log_f = device::estimate_log_gate_fidelity(result.mapped, dev);
  EXPECT_TRUE(std::isfinite(log_f));
  EXPECT_GE(log_f,
            result.mapped.gate_count() * std::log(device::kMinGateFidelity));
  EXPECT_TRUE(std::isfinite(result.log_fidelity_after));
  EXPECT_TRUE(std::isfinite(result.fidelity_decrease_pct));
  double total = device::estimate_total_fidelity(result.mapped, dev);
  EXPECT_TRUE(std::isfinite(total));
  EXPECT_GE(total, 0.0);
  EXPECT_LE(device::estimate_gate_fidelity(result.mapped, dev), 1.0);
}

}  // namespace
}  // namespace qfs
