#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/metrics.h"
#include "support/rng.h"

namespace qfs::graph {
namespace {

// ---------------------------------------------------------------------------
// Graph basics
// ---------------------------------------------------------------------------

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, AddEdgeAccumulatesWeight) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 2.5);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 3.5);
}

TEST(Graph, SetEdgeWeightReplaces) {
  Graph g(2);
  g.add_edge(0, 1, 4.0);
  g.set_edge_weight(0, 1, 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.5);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, SelfLoopIsContractViolation) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), AssertionError);
}

TEST(Graph, OutOfRangeNodeIsContractViolation) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), AssertionError);
  EXPECT_THROW(g.degree(-1), AssertionError);
}

TEST(Graph, MissingEdgeHasZeroWeight) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 0.0);
}

TEST(Graph, DegreeAndWeightedDegree) {
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 2, 3.0);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 2.0);
}

TEST(Graph, EdgesReportedOnceOrdered) {
  Graph g(4);
  g.add_edge(2, 0, 1.0);
  g.add_edge(3, 1, 2.0);
  auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0].u, 0);
  EXPECT_EQ(es[0].v, 2);
  EXPECT_EQ(es[1].u, 1);
  EXPECT_EQ(es[1].v, 3);
}

TEST(Graph, TotalWeight) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
}

TEST(Graph, AdjacencyMatrixSymmetricZeroDiagonal) {
  Graph g(3);
  g.add_edge(0, 2, 4.0);
  auto m = g.adjacency_matrix();
  EXPECT_DOUBLE_EQ(m[0][2], 4.0);
  EXPECT_DOUBLE_EQ(m[2][0], 4.0);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m[i][i], 0.0);
}

TEST(Graph, EnsureNodesGrows) {
  Graph g(2);
  g.ensure_nodes(5);
  EXPECT_EQ(g.num_nodes(), 5);
  g.ensure_nodes(3);  // never shrinks
  EXPECT_EQ(g.num_nodes(), 5);
}

// ---------------------------------------------------------------------------
// Algorithms
// ---------------------------------------------------------------------------

TEST(Algorithms, BfsDistancesOnPath) {
  Graph g = path_graph(5);
  auto d = bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
}

TEST(Algorithms, BfsUnreachableMarked) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Algorithms, AllPairsMatchesSingleSource) {
  qfs::Rng rng(5);
  Graph g = random_connected_graph(12, 0.2, rng);
  auto all = all_pairs_hop_distances(g);
  for (int u = 0; u < 12; ++u) {
    EXPECT_EQ(all[static_cast<std::size_t>(u)], bfs_distances(g, u));
  }
}

TEST(Algorithms, FlatAllPairsMatchesNested) {
  qfs::Rng rng(6);
  Graph g = random_connected_graph(13, 0.25, rng);
  auto nested = all_pairs_hop_distances(g);
  auto flat = flat_all_pairs_hop_distances(g);
  ASSERT_EQ(flat.size(), 13u * 13u);
  for (int u = 0; u < 13; ++u) {
    for (int v = 0; v < 13; ++v) {
      EXPECT_EQ(flat[static_cast<std::size_t>(u) * 13 +
                     static_cast<std::size_t>(v)],
                nested[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Algorithms, FlatAllPairsMarksUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto flat = flat_all_pairs_hop_distances(g);
  EXPECT_EQ(flat[0 * 4 + 1], 1);
  EXPECT_EQ(flat[0 * 4 + 2], kUnreachable);
  EXPECT_EQ(flat[3 * 4 + 2], 1);
  EXPECT_EQ(flat[3 * 4 + 0], kUnreachable);
}

TEST(Algorithms, ShortestPathEndpointsAndContiguity) {
  qfs::Rng rng(6);
  Graph g = random_connected_graph(15, 0.1, rng);
  for (int trial = 0; trial < 20; ++trial) {
    int a = rng.uniform_int(0, 14);
    int b = rng.uniform_int(0, 14);
    auto p = shortest_path(g, a, b);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), a);
    EXPECT_EQ(p.back(), b);
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
    }
    EXPECT_EQ(static_cast<int>(p.size()) - 1,
              bfs_distances(g, a)[static_cast<std::size_t>(b)]);
  }
}

TEST(Algorithms, ShortestPathSameNode) {
  Graph g = path_graph(3);
  auto p = shortest_path(g, 1, 1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 1);
}

TEST(Algorithms, ShortestPathDisconnectedEmpty) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(Algorithms, DijkstraMatchesBfsOnUnitWeights) {
  qfs::Rng rng(7);
  Graph g = random_connected_graph(10, 0.3, rng);
  // Force all weights to 1 for comparability.
  Graph unit(g.num_nodes());
  for (const auto& e : g.edges()) unit.add_edge(e.u, e.v, 1.0);
  auto bd = bfs_distances(unit, 0);
  auto dd = dijkstra_distances(unit, 0);
  for (int v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(dd[static_cast<std::size_t>(v)],
                     static_cast<double>(bd[static_cast<std::size_t>(v)]));
  }
}

TEST(Algorithms, DijkstraUnreachableIsInfinite) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  auto d = dijkstra_distances(g, 0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_TRUE(std::isinf(d[2]));
}

TEST(Algorithms, DijkstraNegativeWeightIsContractViolation) {
  Graph g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW(dijkstra_distances(g, 0), AssertionError);
}

TEST(Algorithms, DijkstraPrefersLightPath) {
  Graph g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  auto d = dijkstra_distances(g, 0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
}

TEST(Algorithms, ConnectedComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(Algorithms, IsConnected) {
  EXPECT_TRUE(is_connected(path_graph(5)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
  Graph g(2);
  EXPECT_FALSE(is_connected(g));
}

TEST(Algorithms, DiameterOfKnownGraphs) {
  EXPECT_EQ(diameter(path_graph(5)), 4);
  EXPECT_EQ(diameter(cycle_graph(6)), 3);
  EXPECT_EQ(diameter(complete_graph(7)), 1);
  EXPECT_EQ(diameter(star_graph(9)), 2);
  Graph g(3);  // disconnected
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(Algorithms, BfsOrderCoversComponent) {
  Graph g = grid_graph(3, 3);
  auto order = bfs_order(g, 4);  // centre
  EXPECT_EQ(order.size(), 9u);
  EXPECT_EQ(order[0], 4);
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(Generators, PathProperties) {
  Graph g = path_graph(6);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(3), 2);
}

TEST(Generators, CycleProperties) {
  Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(g.degree(i), 2);
}

TEST(Generators, CompleteProperties) {
  Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(g.degree(i), 5);
}

TEST(Generators, StarProperties) {
  Graph g = star_graph(7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.degree(0), 6);
  for (int i = 1; i < 7; ++i) EXPECT_EQ(g.degree(i), 1);
}

TEST(Generators, GridProperties) {
  Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  // edges: 3*3 horizontal + 2*4 vertical = 17
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, ErdosRenyiExtremes) {
  qfs::Rng rng(11);
  EXPECT_EQ(erdos_renyi(8, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(erdos_renyi(8, 1.0, rng).num_edges(), 28);
}

TEST(Generators, RandomConnectedIsConnected) {
  qfs::Rng rng(13);
  for (int n : {1, 2, 5, 20, 40}) {
    Graph g = random_connected_graph(n, 0.05, rng);
    EXPECT_TRUE(is_connected(g)) << "n=" << n;
    EXPECT_GE(g.num_edges(), n - 1);
  }
}

TEST(Generators, RandomRegularDegreeBounded) {
  qfs::Rng rng(17);
  Graph g = random_regular_graph(12, 3, rng);
  for (int v = 0; v < 12; ++v) EXPECT_LE(g.degree(v), 3);
  // Most nodes should reach the target degree.
  int full = 0;
  for (int v = 0; v < 12; ++v) {
    if (g.degree(v) == 3) ++full;
  }
  EXPECT_GE(full, 8);
}

// ---------------------------------------------------------------------------
// Metrics (closed-form values on canonical graphs)
// ---------------------------------------------------------------------------

TEST(Metrics, AvgShortestPathComplete) {
  EXPECT_DOUBLE_EQ(average_shortest_path(complete_graph(5)), 1.0);
}

TEST(Metrics, AvgShortestPathPath4) {
  // P4 ordered pairs distances: 1,2,3 pattern -> average = 10/6 per
  // direction; identical both directions.
  EXPECT_NEAR(average_shortest_path(path_graph(4)), 10.0 / 6.0, 1e-12);
}

TEST(Metrics, AvgShortestPathStar) {
  // Star n=5: centre-leaf = 1 (4 pairs each way), leaf-leaf = 2 (12 ordered
  // pairs): (8*1 + 12*2)/20 = 1.6.
  EXPECT_NEAR(average_shortest_path(star_graph(5)), 1.6, 1e-12);
}

TEST(Metrics, AvgShortestPathTrivialCases) {
  EXPECT_DOUBLE_EQ(average_shortest_path(Graph(0)), 0.0);
  EXPECT_DOUBLE_EQ(average_shortest_path(Graph(1)), 0.0);
}

TEST(Metrics, ClosenessCompleteIsOne) {
  Graph g = complete_graph(6);
  for (int v = 0; v < 6; ++v) EXPECT_NEAR(closeness(g, v), 1.0, 1e-12);
}

TEST(Metrics, ClosenessStarCentre) {
  Graph g = star_graph(5);
  EXPECT_NEAR(closeness(g, 0), 1.0, 1e-12);       // centre: all at distance 1
  EXPECT_NEAR(closeness(g, 1), 4.0 / 7.0, 1e-12);  // leaf: 1 + 3*2 = 7
}

TEST(Metrics, ClosenessIsolatedIsZero) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(closeness(g, 2), 0.0);
}

TEST(Metrics, ClusteringCompleteIsOne) {
  EXPECT_DOUBLE_EQ(average_clustering(complete_graph(5)), 1.0);
}

TEST(Metrics, ClusteringTreeIsZero) {
  EXPECT_DOUBLE_EQ(average_clustering(path_graph(6)), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering(star_graph(6)), 0.0);
}

TEST(Metrics, ClusteringTriangleWithTail) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  // nodes 0,1: clustering 1; node 2: 1/3 (one of three neighbour pairs);
  // node 3: 0.
  EXPECT_NEAR(average_clustering(g), (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0, 1e-12);
}

TEST(Metrics, DensityKnownValues) {
  EXPECT_DOUBLE_EQ(density(complete_graph(6)), 1.0);
  EXPECT_NEAR(density(path_graph(4)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(density(Graph(1)), 0.0);
}

TEST(Metrics, DegreeStats) {
  Graph g = star_graph(5);
  auto s = degree_stats(g);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 4);
  EXPECT_NEAR(s.mean, 8.0 / 5.0, 1e-12);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Metrics, DegreeStatsRegularZeroStddev) {
  auto s = degree_stats(cycle_graph(8));
  EXPECT_EQ(s.min, 2);
  EXPECT_EQ(s.max, 2);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Metrics, EdgeWeightStats) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 3.0);
  auto s = edge_weight_stats(g);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.variance, 1.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
}

TEST(Metrics, EdgeWeightStatsEmpty) {
  auto s = edge_weight_stats(Graph(3));
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Metrics, AdjacencyMatrixStatsIncludeZeros) {
  Graph g(3);
  g.add_edge(0, 1, 3.0);
  // Upper triangle entries: {3, 0, 0} -> mean 1, var = (4+1+1)/3 = 2.
  auto s = adjacency_matrix_stats(g);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_NEAR(s.variance, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Metrics, AdjacencyStddevLowerForUniformComplete) {
  // A complete graph with equal weights has zero adjacency-matrix spread; a
  // sparse unequal graph has more. This is the Table-I trade-off direction.
  Graph uniform = complete_graph(6);
  Graph skew(6);
  skew.add_edge(0, 1, 10.0);
  skew.add_edge(2, 3, 1.0);
  EXPECT_LT(adjacency_matrix_stats(uniform).stddev,
            adjacency_matrix_stats(skew).stddev);
}

TEST(Metrics, BetweennessStarCentre) {
  // Star n=5: the centre lies on all C(4,2)=6 leaf-pair shortest paths.
  auto c = betweenness_centrality(star_graph(5));
  EXPECT_NEAR(c[0], 6.0, 1e-9);
  for (int leaf = 1; leaf < 5; ++leaf) EXPECT_NEAR(c[static_cast<std::size_t>(leaf)], 0.0, 1e-9);
}

TEST(Metrics, BetweennessPathGraph) {
  // P4 (0-1-2-3): node 1 lies on paths 0-2, 0-3 => 2; same for node 2.
  auto c = betweenness_centrality(path_graph(4));
  EXPECT_NEAR(c[0], 0.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
  EXPECT_NEAR(c[2], 2.0, 1e-9);
  EXPECT_NEAR(c[3], 0.0, 1e-9);
}

TEST(Metrics, BetweennessSplitsOverEqualPaths) {
  // C4: each pair of opposite nodes has two shortest paths; each middle
  // node carries half a path => betweenness 0.5 per node.
  auto c = betweenness_centrality(cycle_graph(4));
  for (double v : c) EXPECT_NEAR(v, 0.5, 1e-9);
}

TEST(Metrics, BetweennessCompleteIsZero) {
  auto c = betweenness_centrality(complete_graph(6));
  for (double v : c) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Metrics, EccentricityAndRadius) {
  Graph p = path_graph(5);
  EXPECT_EQ(eccentricity(p, 0), 4);
  EXPECT_EQ(eccentricity(p, 2), 2);
  EXPECT_EQ(radius(p), 2);
  EXPECT_EQ(radius(complete_graph(4)), 1);
  EXPECT_EQ(radius(star_graph(6)), 1);
}

TEST(Metrics, AlgebraicConnectivityCompleteGraph) {
  // lambda_2(K_n) = n.
  EXPECT_NEAR(algebraic_connectivity(complete_graph(5)), 5.0, 1e-6);
  EXPECT_NEAR(algebraic_connectivity(complete_graph(8)), 8.0, 1e-6);
}

TEST(Metrics, AlgebraicConnectivityPathGraph) {
  // lambda_2(P_n) = 2(1 - cos(pi/n)).
  for (int n : {3, 5, 8}) {
    double expected = 2.0 * (1.0 - std::cos(M_PI / n));
    EXPECT_NEAR(algebraic_connectivity(path_graph(n)), expected, 1e-5)
        << "n=" << n;
  }
}

TEST(Metrics, AlgebraicConnectivityStarGraph) {
  // lambda_2(star) = 1.
  EXPECT_NEAR(algebraic_connectivity(star_graph(7)), 1.0, 1e-5);
}

TEST(Metrics, AlgebraicConnectivityDisconnectedIsZero) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(algebraic_connectivity(g), 0.0);
}

TEST(Metrics, AlgebraicConnectivityOrdersByConnectivity) {
  // Better-connected graphs have higher lambda_2.
  double path = algebraic_connectivity(path_graph(8));
  double ring = algebraic_connectivity(cycle_graph(8));
  double complete = algebraic_connectivity(complete_graph(8));
  EXPECT_LT(path, ring);
  EXPECT_LT(ring, complete);
}

TEST(Metrics, AssortativityRegularIsDegenerate) {
  EXPECT_DOUBLE_EQ(degree_assortativity(cycle_graph(6)), 0.0);
}

TEST(Metrics, AssortativityStarIsNegative) {
  EXPECT_LT(degree_assortativity(star_graph(6)), -0.9);
}

// ---------------------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------------------

class GraphSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(GraphSizeSweep, CompleteGraphMetricsScale) {
  const int n = GetParam();
  Graph g = complete_graph(n);
  EXPECT_EQ(g.num_edges(), n * (n - 1) / 2);
  EXPECT_DOUBLE_EQ(average_shortest_path(g), 1.0);
  EXPECT_DOUBLE_EQ(density(g), 1.0);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
  auto s = degree_stats(g);
  EXPECT_EQ(s.min, n - 1);
  EXPECT_EQ(s.max, n - 1);
}

TEST_P(GraphSizeSweep, PathGraphDiameter) {
  const int n = GetParam();
  EXPECT_EQ(diameter(path_graph(n)), n - 1);
}

TEST_P(GraphSizeSweep, RandomConnectedStaysConnectedUnderMetrics) {
  const int n = GetParam();
  qfs::Rng rng(100 + static_cast<std::uint64_t>(n));
  Graph g = random_connected_graph(n, 0.1, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(average_shortest_path(g), 1.0 - 1e-12);
  EXPECT_LE(density(g), 1.0);
  EXPECT_GE(degree_stats(g).min, 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraphSizeSweep,
                         ::testing::Values(3, 4, 7, 12, 25, 50));

}  // namespace
}  // namespace qfs::graph
