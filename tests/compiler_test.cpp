#include <gtest/gtest.h>

#include <cmath>

#include "analysis/checkers.h"
#include "compiler/decompose.h"
#include "compiler/euler.h"
#include "compiler/optimize.h"
#include "compiler/pass_manager.h"
#include "device/device.h"
#include "sim/equivalence.h"
#include "support/rng.h"
#include "workloads/random_circuit.h"

namespace qfs::compiler {
namespace {

using circuit::Circuit;
using circuit::CMatrix;
using circuit::GateKind;

// ---------------------------------------------------------------------------
// ZYZ Euler decomposition
// ---------------------------------------------------------------------------

CMatrix rebuild_from_zyz(const ZyzAngles& a) {
  using circuit::make_gate;
  CMatrix rz_phi = circuit::gate_matrix(make_gate(GateKind::kRz, {0}, {a.phi}));
  CMatrix ry = circuit::gate_matrix(make_gate(GateKind::kRy, {0}, {a.theta}));
  CMatrix rz_lam = circuit::gate_matrix(make_gate(GateKind::kRz, {0}, {a.lambda}));
  return (rz_phi * ry * rz_lam)
      .scaled(std::exp(circuit::Complex(0, 1) * a.phase));
}

class ZyzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ZyzRoundTrip, ReconstructsKindExactly) {
  auto kind = static_cast<GateKind>(GetParam());
  if (!circuit::is_unitary(kind) || circuit::gate_arity(kind) != 1) GTEST_SKIP();
  std::vector<double> params(
      static_cast<std::size_t>(circuit::gate_param_count(kind)), 0.77);
  CMatrix u = circuit::gate_matrix(circuit::make_gate(kind, {0}, params));
  ZyzAngles a = zyz_decompose(u);
  EXPECT_TRUE(approx_equal(rebuild_from_zyz(a), u, 1e-9))
      << circuit::gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ZyzRoundTrip,
                         ::testing::Range(0, circuit::kNumGateKinds));

TEST(Zyz, RandomUnitariesRoundTrip) {
  qfs::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    double theta = rng.uniform_real(0, M_PI);
    double phi = rng.uniform_real(-M_PI, M_PI);
    double lambda = rng.uniform_real(-M_PI, M_PI);
    CMatrix u = circuit::gate_matrix(
        circuit::make_gate(GateKind::kU3, {0}, {theta, phi, lambda}));
    ZyzAngles a = zyz_decompose(u);
    EXPECT_TRUE(approx_equal(rebuild_from_zyz(a), u, 1e-9));
  }
}

TEST(Zyz, DiagonalEdgeCase) {
  CMatrix s = circuit::gate_matrix(circuit::make_gate(GateKind::kS, {0}));
  ZyzAngles a = zyz_decompose(s);
  EXPECT_NEAR(a.theta, 0.0, 1e-12);
  EXPECT_TRUE(approx_equal(rebuild_from_zyz(a), s, 1e-9));
}

TEST(Zyz, AntiDiagonalEdgeCase) {
  CMatrix x = circuit::gate_matrix(circuit::make_gate(GateKind::kX, {0}));
  ZyzAngles a = zyz_decompose(x);
  EXPECT_NEAR(a.theta, M_PI, 1e-12);
  EXPECT_TRUE(approx_equal(rebuild_from_zyz(a), x, 1e-9));
}

TEST(Zyz, NonUnitaryIsContractViolation) {
  CMatrix m(2);
  m.at(0, 0) = 2.0;
  EXPECT_THROW(zyz_decompose(m), AssertionError);
}

// ---------------------------------------------------------------------------
// Decomposition to gate sets
// ---------------------------------------------------------------------------

Circuit algorithm_sampler(int variant) {
  Circuit c(4, "sample");
  switch (variant) {
    case 0:
      c.h(0).cx(0, 1).cz(1, 2).swap(2, 3).t(3);
      break;
    case 1:
      c.ccx(0, 1, 2).ccz(1, 2, 3).cswap(0, 1, 3);
      break;
    case 2:
      c.u3(0.3, -0.4, 0.5, 0).cp(0.7, 0, 3).cy(1, 2).sdg(3).sxdg(0);
      break;
    default:
      c.rx(1.2, 0).ry(-0.3, 1).rz(2.2, 2).p(0.9, 3).cx(3, 0).s(1);
      break;
  }
  return c;
}

class DecomposeVariant : public ::testing::TestWithParam<int> {};

TEST_P(DecomposeVariant, SurfaceSetIsNativeAndEquivalent) {
  Circuit c = algorithm_sampler(GetParam());
  device::GateSet target = device::surface_code_gateset();
  Circuit lowered = decompose_to_gateset(c, target);
  EXPECT_TRUE(target.supports_circuit(lowered));
  EXPECT_TRUE(sim::circuits_equivalent(c, lowered, 1e-8));
}

TEST_P(DecomposeVariant, IbmSetIsNativeAndEquivalent) {
  Circuit c = algorithm_sampler(GetParam());
  device::GateSet target = device::ibm_gateset();
  Circuit lowered = decompose_to_gateset(c, target);
  EXPECT_TRUE(target.supports_circuit(lowered));
  EXPECT_TRUE(sim::circuits_equivalent(c, lowered, 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Variants, DecomposeVariant, ::testing::Range(0, 4));

TEST(Decompose, NativeGatesPassThroughUnchanged) {
  Circuit c(2);
  c.rx(0.5, 0).cz(0, 1).rz(0.1, 1);
  Circuit lowered = decompose_to_gateset(c, device::surface_code_gateset());
  EXPECT_EQ(lowered, c);
}

TEST(Decompose, MeasureAndBarrierPassThrough) {
  Circuit c(2);
  c.h(0).measure(0).barrier({0, 1}).reset(1);
  Circuit lowered = decompose_to_gateset(c, device::surface_code_gateset());
  int measures = 0, barriers = 0, resets = 0;
  for (const auto& g : lowered.gates()) {
    if (g.kind == GateKind::kMeasure) ++measures;
    if (g.kind == GateKind::kBarrier) ++barriers;
    if (g.kind == GateKind::kReset) ++resets;
  }
  EXPECT_EQ(measures, 1);
  EXPECT_EQ(barriers, 1);
  EXPECT_EQ(resets, 1);
}

TEST(Decompose, ToffoliUsesSixEntanglersOnIbm) {
  Circuit c(3);
  c.ccx(0, 1, 2);
  Circuit lowered = decompose_to_gateset(c, device::ibm_gateset());
  int cx = 0;
  for (const auto& g : lowered.gates()) {
    if (g.kind == GateKind::kCx) ++cx;
  }
  EXPECT_EQ(cx, 6);
}

TEST(Decompose, RandomCircuitsStayEquivalent) {
  qfs::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 4;
    spec.num_gates = 30;
    spec.two_qubit_fraction = 0.4;
    Circuit c = workloads::random_circuit(spec, rng);
    Circuit lowered = decompose_to_gateset(c, device::surface_code_gateset());
    EXPECT_TRUE(device::surface_code_gateset().supports_circuit(lowered));
    EXPECT_TRUE(sim::circuits_equivalent(c, lowered, 1e-7)) << "trial " << trial;
  }
}

TEST(ExpandSwaps, RewritesOnlySwaps) {
  Circuit c(3);
  c.h(0).swap(0, 2).cz(1, 2);
  Circuit expanded = expand_swaps(c);
  EXPECT_EQ(expanded.size(), 5u);  // h + 3 cx + cz
  EXPECT_TRUE(sim::circuits_equivalent(c, expanded));
  for (const auto& g : expanded.gates()) EXPECT_NE(g.kind, GateKind::kSwap);
}

// ---------------------------------------------------------------------------
// Optimisation passes
// ---------------------------------------------------------------------------

TEST(Optimize, RemoveIdentities) {
  Circuit c(2);
  c.i(0).h(1).rz(0.0, 0).rx(2 * M_PI, 1);
  Circuit out = remove_identities(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::kH);
}

TEST(Optimize, CancelAdjacentSelfInverse) {
  Circuit c(2);
  c.h(0).h(0).cx(0, 1).cx(0, 1).x(1);
  Circuit out = cancel_inverse_pairs(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::kX);
}

TEST(Optimize, CancelSTdgPairs) {
  Circuit c(1);
  c.s(0).sdg(0).t(0).tdg(0);
  EXPECT_EQ(cancel_inverse_pairs(c).size(), 0u);
}

TEST(Optimize, CancelCascades) {
  // h x x h collapses completely through two sweeps.
  Circuit c(1);
  c.h(0).x(0).x(0).h(0);
  EXPECT_EQ(cancel_inverse_pairs(c).size(), 0u);
}

TEST(Optimize, NoCancelAcrossInterveningGate) {
  Circuit c(2);
  c.h(0).cx(0, 1).h(0);
  EXPECT_EQ(cancel_inverse_pairs(c).size(), 3u);
}

TEST(Optimize, NoCancelDifferentOperandOrder) {
  Circuit c(2);
  c.cx(0, 1).cx(1, 0);
  EXPECT_EQ(cancel_inverse_pairs(c).size(), 2u);
}

TEST(Optimize, RotationInversePairCancels) {
  Circuit c(1);
  c.rz(0.4, 0).rz(-0.4, 0);
  EXPECT_EQ(cancel_inverse_pairs(c).size(), 0u);
}

TEST(Optimize, MergeRotationsSameAxis) {
  Circuit c(1);
  c.rz(0.25, 0).rz(0.5, 0).rz(0.25, 0);
  Circuit out = merge_rotations(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out.gates()[0].params[0], 1.0, 1e-12);
}

TEST(Optimize, MergeRotationsToIdentityVanishes) {
  Circuit c(1);
  c.rx(M_PI, 0).rx(M_PI, 0);  // 2*pi rotation = identity up to phase
  EXPECT_EQ(merge_rotations(c).size(), 0u);
}

TEST(Optimize, MergeDoesNotCrossAxes) {
  Circuit c(1);
  c.rz(0.3, 0).rx(0.3, 0);
  EXPECT_EQ(merge_rotations(c).size(), 2u);
}

TEST(Optimize, MergeDoesNotCrossTwoQubitGates) {
  Circuit c(2);
  c.rz(0.3, 0).cx(0, 1).rz(0.3, 0);
  EXPECT_EQ(merge_rotations(c).size(), 3u);
}

TEST(Commutation, DiagonalGatesCommute) {
  using circuit::make_gate;
  EXPECT_TRUE(gates_commute(make_gate(GateKind::kRz, {0}, {0.3}),
                            make_gate(GateKind::kT, {0})));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::kCz, {0, 1}),
                            make_gate(GateKind::kRz, {1}, {0.2})));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::kCz, {0, 1}),
                            make_gate(GateKind::kCz, {1, 2})));
}

TEST(Commutation, CxControlIsDiagonalTargetIsXLike) {
  using circuit::make_gate;
  circuit::Gate cx = make_gate(GateKind::kCx, {0, 1});
  EXPECT_TRUE(gates_commute(cx, make_gate(GateKind::kRz, {0}, {0.4})));
  EXPECT_TRUE(gates_commute(cx, make_gate(GateKind::kX, {1})));
  EXPECT_FALSE(gates_commute(cx, make_gate(GateKind::kX, {0})));
  EXPECT_FALSE(gates_commute(cx, make_gate(GateKind::kRz, {1}, {0.4})));
}

TEST(Commutation, SharedControlCxPairsCommute) {
  using circuit::make_gate;
  EXPECT_TRUE(gates_commute(make_gate(GateKind::kCx, {0, 1}),
                            make_gate(GateKind::kCx, {0, 2})));
  EXPECT_TRUE(gates_commute(make_gate(GateKind::kCx, {0, 2}),
                            make_gate(GateKind::kCx, {1, 2})));
  EXPECT_FALSE(gates_commute(make_gate(GateKind::kCx, {0, 1}),
                             make_gate(GateKind::kCx, {1, 2})));
}

TEST(Commutation, DisjointGatesAlwaysCommute) {
  using circuit::make_gate;
  EXPECT_TRUE(gates_commute(make_gate(GateKind::kH, {0}),
                            make_gate(GateKind::kY, {1})));
}

TEST(Commutation, NonUnitaryNeverCommutes) {
  using circuit::make_gate;
  EXPECT_FALSE(gates_commute(make_gate(GateKind::kMeasure, {0}),
                             make_gate(GateKind::kZ, {1})));
}

TEST(Commutation, CancelAcrossCommutingGate) {
  // rz cx rz^-1 with rz on the control collapses to cx.
  Circuit c(2);
  c.rz(0.7, 0).cx(0, 1).rz(-0.7, 0);
  Circuit out = cancel_with_commutation(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.gates()[0].kind, GateKind::kCx);
  EXPECT_TRUE(sim::circuits_equivalent(c, out, 1e-9));
}

TEST(Commutation, NoCancelAcrossNonCommutingGate) {
  // rz on the TARGET does not commute with cx: nothing may cancel.
  Circuit c(2);
  c.rz(0.7, 1).cx(0, 1).rz(-0.7, 1);
  EXPECT_EQ(cancel_with_commutation(c).size(), 3u);
}

TEST(Commutation, XThroughCxTargetCancels) {
  Circuit c(2);
  c.x(1).cx(0, 1).x(1);
  Circuit out = cancel_with_commutation(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(sim::circuits_equivalent(c, out, 1e-9));
}

TEST(Commutation, ChainsOfCommutingGates) {
  // t(0) cz(0,1) s(0) cz(0,2) tdg(0): tdg hops over both cz and s.
  Circuit c(3);
  c.t(0).cz(0, 1).s(0).cz(0, 2).tdg(0);
  Circuit out = cancel_with_commutation(c);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(sim::circuits_equivalent(c, out, 1e-9));
}

TEST(Commutation, RandomCircuitsPreserveSemantics) {
  qfs::Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 4;
    spec.num_gates = 30;
    spec.two_qubit_fraction = 0.4;
    Circuit c = workloads::random_circuit(spec, rng);
    Circuit out = cancel_with_commutation(c);
    EXPECT_LE(out.gate_count(), c.gate_count());
    EXPECT_TRUE(sim::circuits_equivalent(c, out, 1e-7)) << "trial " << trial;
  }
}

TEST(Optimize, FullPipelinePreservesSemantics) {
  qfs::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 4;
    spec.num_gates = 40;
    spec.two_qubit_fraction = 0.3;
    Circuit c = workloads::random_circuit(spec, rng);
    Circuit out = optimize(c);
    EXPECT_LE(out.gate_count(), c.gate_count());
    EXPECT_TRUE(sim::circuits_equivalent(c, out, 1e-7)) << "trial " << trial;
  }
}

TEST(Optimize, PipelineShrinksRedundantCircuit) {
  Circuit c(2);
  c.h(0).h(0).rz(0.2, 1).rz(-0.2, 1).cx(0, 1).cx(0, 1).i(0);
  EXPECT_EQ(optimize(c).size(), 0u);
}

// ---------------------------------------------------------------------------
// PassManager
// ---------------------------------------------------------------------------

TEST(PassManager, RunsPassesInOrderWithStats) {
  PassManager pm;
  pm.add("add-x", [](const Circuit& c) {
      Circuit out = c;
      out.x(0);
      return out;
    }).add("drop-all", [](const Circuit& c) { return Circuit(c.num_qubits()); });
  Circuit in(1);
  in.h(0);
  Circuit out = pm.run(in);
  EXPECT_EQ(out.gate_count(), 0);
  ASSERT_EQ(pm.stats().size(), 2u);
  EXPECT_EQ(pm.stats()[0].name, "add-x");
  EXPECT_EQ(pm.stats()[0].gates_before, 1);
  EXPECT_EQ(pm.stats()[0].gates_after, 2);
  EXPECT_EQ(pm.stats()[1].gates_after, 0);
}

TEST(PassManager, ReportMentionsEveryPass) {
  PassManager pm;
  pm.add("identity", [](const Circuit& c) { return c; });
  pm.run(Circuit(2));
  EXPECT_NE(pm.report().find("identity"), std::string::npos);
}

TEST(PassManager, ValidatesPassDefinition) {
  PassManager pm;
  EXPECT_THROW(pm.add("", [](const Circuit& c) { return c; }), AssertionError);
  EXPECT_THROW(pm.add(Pass{"x", nullptr}), AssertionError);
}

TEST(PassManager, StandardLoweringPipelineIsNativeAndEquivalent) {
  qfs::Rng rng(31);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 4;
  spec.num_gates = 30;
  spec.two_qubit_fraction = 0.4;
  Circuit c = workloads::random_circuit(spec, rng);
  auto pm = standard_lowering_pipeline(device::surface_code_gateset());
  Circuit out = pm.run(c);
  EXPECT_TRUE(device::surface_code_gateset().supports_circuit(out));
  EXPECT_TRUE(sim::circuits_equivalent(c, out, 1e-7));
  EXPECT_EQ(pm.stats().size(), pm.size());
  // The cleanup passes never grow the circuit.
  for (std::size_t i = 1; i < pm.stats().size(); ++i) {
    EXPECT_LE(pm.stats()[i].gates_after, pm.stats()[i].gates_before)
        << pm.stats()[i].name;
  }
}

TEST(PassManager, RerunClearsStats) {
  PassManager pm;
  pm.add("identity", [](const Circuit& c) { return c; });
  pm.run(Circuit(1));
  pm.run(Circuit(1));
  EXPECT_EQ(pm.stats().size(), 1u);
}

// ---------------------------------------------------------------------------
// Verify-between-passes mode (analysis::make_pass_check as the checker)
// ---------------------------------------------------------------------------

analysis::CheckOptions physical_opts(const device::Device& dev) {
  analysis::CheckOptions opts;
  opts.device = &dev;
  opts.physical = true;
  return opts;
}

TEST(PassVerifier, CleanPipelineVerifiesOk) {
  device::Device dev = device::line_device(4);
  PassManager pm;
  pm.add("append-native", [](const Circuit& c) {
      Circuit out = c;
      out.rz(0.1, 0);
      return out;
    })
      .enable_verification(analysis::make_pass_check(physical_opts(dev)));
  Circuit in(4);
  in.cz(0, 1);
  pm.run(in);
  const PassVerifierReport& report = pm.verifier_report();
  EXPECT_TRUE(report.ran);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_NE(report.to_string().find("all passes verified"), std::string::npos);
}

TEST(PassVerifier, BrokenPassIsAttributedByNameAndIndex) {
  device::Device dev = device::line_device(4);
  PassManager pm;
  pm.add("identity", [](const Circuit& c) { return c; })
      .add("inject-non-native", [](const Circuit& c) {
        Circuit out = c;
        out.t(0);  // not in the surface-code gate set
        return out;
      })
      .add("never-reached", [](const Circuit& c) {
        ADD_FAILURE() << "pipeline must stop at the offending pass";
        return c;
      })
      .enable_verification(analysis::make_pass_check(physical_opts(dev)));
  Circuit in(4);
  in.cz(0, 1);
  pm.run(in);
  const PassVerifierReport& report = pm.verifier_report();
  EXPECT_TRUE(report.ran);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.offending_pass, "inject-non-native");
  EXPECT_EQ(report.offending_pass_index, 1);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].code, "QFS005");
  EXPECT_NE(report.to_string().find("'inject-non-native' (#1)"),
            std::string::npos);
  EXPECT_NE(report.to_string().find("QFS005"), std::string::npos);
  // The offending pass still gets its stats entry; the aborted tail does not.
  EXPECT_EQ(pm.stats().size(), 2u);
}

TEST(PassVerifier, NonAdjacentGateIsCaughtToo) {
  device::Device dev = device::line_device(4);
  PassManager pm;
  pm.add("inject-non-adjacent", [](const Circuit& c) {
      Circuit out = c;
      out.cz(0, 3);  // qubits 0 and 3 are not coupled on a line
      return out;
    })
      .enable_verification(analysis::make_pass_check(physical_opts(dev)));
  pm.run(Circuit(4));
  const PassVerifierReport& report = pm.verifier_report();
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].code, "QFS006");
}

TEST(PassVerifier, PreBrokenInputIsAttributedToInput) {
  device::Device dev = device::line_device(4);
  PassManager pm;
  pm.add("never-reached", [](const Circuit& c) {
      ADD_FAILURE() << "input verification must abort before any pass";
      return c;
    })
      .enable_verification(analysis::make_pass_check(physical_opts(dev)));
  Circuit in(4);
  in.h(0);  // non-native before the pipeline even starts
  Circuit out = pm.run(in);
  const PassVerifierReport& report = pm.verifier_report();
  EXPECT_TRUE(report.ran);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.offending_pass, "<input>");
  EXPECT_EQ(report.offending_pass_index, -1);
  EXPECT_TRUE(pm.stats().empty());
  EXPECT_EQ(out, in);  // the input comes back unchanged
}

TEST(PassVerifier, ReportNotRanWithoutVerification) {
  PassManager pm;
  pm.add("identity", [](const Circuit& c) { return c; });
  pm.run(Circuit(2));
  EXPECT_FALSE(pm.verifier_report().ran);
}

TEST(PassVerifier, VerifiedStandardPipelineStaysClean) {
  // The standard lowering pipeline must never trip the native-gate checker
  // when targeting the same gate set it lowers to (logical stage: no
  // adjacency constraint, hence no device in the options).
  qfs::Rng rng(17);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 4;
  spec.num_gates = 24;
  spec.two_qubit_fraction = 0.3;
  Circuit c = workloads::random_circuit(spec, rng);
  auto pm = standard_lowering_pipeline(device::surface_code_gateset());
  pm.enable_verification(analysis::make_pass_check({}));
  pm.run(c);
  EXPECT_TRUE(pm.verifier_report().ok) << pm.verifier_report().to_string();
}

}  // namespace
}  // namespace qfs::compiler
