#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/checkers.h"
#include "analysis/diagnostic.h"
#include "circuit/flat.h"
#include "compiler/pass_manager.h"
#include "compiler/schedule.h"
#include "device/device.h"
#include "isa/timed_program.h"
#include "mapper/pipeline.h"
#include "qasm/parser.h"
#include "support/rng.h"
#include "workloads/suite.h"

namespace qfs::analysis {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

std::vector<std::string> codes_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : diags) codes.push_back(d.code);
  return codes;
}

bool contains_code(const std::vector<Diagnostic>& diags,
                   const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& first_with_code(const std::vector<Diagnostic>& diags,
                                  const std::string& code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return d;
  }
  ADD_FAILURE() << "no diagnostic with code " << code;
  static const Diagnostic none;
  return none;
}

// ---------------------------------------------------------------------------
// Registry integrity
// ---------------------------------------------------------------------------

TEST(Registry, CodesAreUniqueAndWellFormed) {
  std::vector<std::string> seen;
  for (const CheckerInfo& info : checker_registry()) {
    std::string code = info.code;
    EXPECT_EQ(code.size(), 6u) << code;
    EXPECT_TRUE(code.rfind("QFS", 0) == 0) << code;
    EXPECT_EQ(std::count(seen.begin(), seen.end(), code), 0)
        << "duplicate code " << code;
    seen.push_back(code);
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.summary, nullptr);
  }
  EXPECT_GE(seen.size(), 10u);
}

TEST(Registry, FindCheckerRoundTrips) {
  for (const CheckerInfo& info : checker_registry()) {
    const CheckerInfo* found = find_checker(info.code);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &info);
  }
  EXPECT_EQ(find_checker("QFS999"), nullptr);
}

// ---------------------------------------------------------------------------
// Raw-gate checkers: the un-asserting entry point can hold violations the
// constructive Circuit API rejects by crashing.
// ---------------------------------------------------------------------------

TEST(Checkers, Qfs001QubitOutOfRange) {
  std::vector<Gate> gates = {Gate{GateKind::kCx, {0, 5}, {}}};
  auto diags = analyze_gates(3, gates);
  const Diagnostic& d = first_with_code(diags, "QFS001");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.gate_index, 0);
  EXPECT_EQ(d.location.qubit, 5);
}

TEST(Checkers, Qfs001NegativeQubit) {
  std::vector<Gate> gates = {Gate{GateKind::kH, {-1}, {}}};
  auto diags = analyze_gates(2, gates);
  EXPECT_TRUE(contains_code(diags, "QFS001"));
}

TEST(Checkers, Qfs002DuplicateOperand) {
  std::vector<Gate> gates = {Gate{GateKind::kCz, {1, 1}, {}}};
  auto diags = analyze_gates(2, gates);
  const Diagnostic& d = first_with_code(diags, "QFS002");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.gate_index, 0);
  EXPECT_EQ(d.location.qubit, 1);
}

TEST(Checkers, Qfs003GateAfterMeasure) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure(0).h(0);
  auto diags = analyze_circuit(c);
  const Diagnostic& d = first_with_code(diags, "QFS003");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.location.gate_index, 3);
  EXPECT_EQ(d.location.qubit, 0);
}

TEST(Checkers, Qfs003ResetClearsMeasuredState) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure(0).reset(0).h(0);
  auto diags = analyze_circuit(c);
  EXPECT_FALSE(contains_code(diags, "QFS003"));
}

TEST(Checkers, Qfs004IdleQubit) {
  Circuit c(3);
  c.h(0).cx(0, 1);
  auto diags = analyze_circuit(c);
  const Diagnostic& d = first_with_code(diags, "QFS004");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.location.qubit, 2);
}

TEST(Checkers, Qfs004SuppressedOnPhysicalCircuits) {
  device::Device dev = device::line_device(6);
  Circuit c(6);
  c.rz(0.5, 0);
  CheckOptions opts;
  opts.device = &dev;
  opts.physical = true;
  EXPECT_FALSE(contains_code(analyze_circuit(c, opts), "QFS004"));
  // ... but still reported at the lint stage.
  EXPECT_TRUE(contains_code(analyze_circuit(c), "QFS004"));
}

TEST(Checkers, Qfs005NonNativeGate) {
  device::Device dev = device::line_device(4);  // surface-code gate set
  Circuit c(2);
  c.t(0).cz(0, 1);
  CheckOptions opts;
  opts.device = &dev;
  opts.physical = true;
  auto diags = analyze_circuit(c, opts);
  const Diagnostic& d = first_with_code(diags, "QFS005");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.gate_index, 0);
  // cz is native: exactly one non-native finding.
  const std::vector<std::string> codes = codes_of(diags);
  EXPECT_EQ(std::count(codes.begin(), codes.end(), std::string("QFS005")), 1);
}

TEST(Checkers, Qfs006NonAdjacentPair) {
  device::Device dev = device::line_device(4);
  Circuit c(4);
  c.cz(0, 1).cz(0, 3);
  CheckOptions opts;
  opts.device = &dev;
  opts.physical = true;
  auto diags = analyze_circuit(c, opts);
  const Diagnostic& d = first_with_code(diags, "QFS006");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.location.gate_index, 1);
}

TEST(Checkers, Qfs008UnreachableAfterMeasureAll) {
  Circuit c(2);
  c.h(0).cx(0, 1).measure(0).measure(1).h(0);
  auto diags = analyze_circuit(c);
  const Diagnostic& d = first_with_code(diags, "QFS008");
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.location.gate_index, 4);
}

TEST(Checkers, Qfs009OversizedRegister) {
  device::Device dev = device::line_device(3);
  Circuit c(5);
  c.rz(0.1, 4);
  CheckOptions opts;
  opts.device = &dev;
  opts.physical = true;
  auto diags = analyze_circuit(c, opts);
  EXPECT_TRUE(contains_code(diags, "QFS009"));
}

TEST(Checkers, CleanCircuitHasNoFindings) {
  device::Device dev = device::line_device(3);
  Circuit c(3);
  c.rz(0.5, 0).cz(0, 1).cz(1, 2).measure(0).measure(1).measure(2);
  CheckOptions opts;
  opts.device = &dev;
  opts.physical = true;
  EXPECT_TRUE(analyze_circuit(c, opts).empty());
  EXPECT_TRUE(analyze_circuit(c).empty());
}

// ---------------------------------------------------------------------------
// Timed-program checkers (QFS007: the control-group / double-booking
// contract test — QASM cannot express timing, so the violation is seeded
// directly).
// ---------------------------------------------------------------------------

TEST(TimedProgram, Qfs007ControlGroupKindMixing) {
  device::Device dev = device::line_device(4);
  dev.set_control_groups({0, 0, 1, 1});
  // Qubits 0 and 1 share a control group but run different kinds in
  // overlapping cycles — exactly what shared analog electronics forbid.
  std::vector<isa::Bundle> bundles = {
      {0,
       {isa::Instruction{GateKind::kRx, {0}, {0.5}, 2},
        isa::Instruction{GateKind::kRy, {1}, {0.5}, 2}}},
  };
  isa::TimedProgram program("mixed", 20.0, 4, bundles);
  ASSERT_FALSE(isa::program_is_valid(program, dev));
  auto diags = analyze_timed_program(program, dev);
  const Diagnostic& d = first_with_code(diags, "QFS007");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("control group"), std::string::npos);
}

TEST(TimedProgram, Qfs007QubitDoubleBooked) {
  device::Device dev = device::line_device(4);
  std::vector<isa::Bundle> bundles = {
      {0, {isa::Instruction{GateKind::kRx, {0}, {0.5}, 3}}},
      {1, {isa::Instruction{GateKind::kRy, {0}, {0.5}, 1}}},
  };
  isa::TimedProgram program("overlap", 20.0, 4, bundles);
  ASSERT_FALSE(isa::program_is_valid(program, dev));
  auto diags = analyze_timed_program(program, dev);
  const Diagnostic& d = first_with_code(diags, "QFS007");
  EXPECT_NE(d.message.find("double-booked"), std::string::npos);
}

TEST(TimedProgram, Qfs006NonAdjacentInstruction) {
  device::Device dev = device::line_device(4);
  std::vector<isa::Bundle> bundles = {
      {0, {isa::Instruction{GateKind::kCz, {0, 3}, {}, 1}}},
  };
  isa::TimedProgram program("nonadj", 20.0, 4, bundles);
  auto diags = analyze_timed_program(program, dev);
  EXPECT_TRUE(contains_code(diags, "QFS006"));
}

TEST(TimedProgram, CleanProgramHasNoFindings) {
  device::Device dev = device::line_device(4);
  dev.set_control_groups({0, 0, 1, 1});
  std::vector<isa::Bundle> bundles = {
      {0,
       {isa::Instruction{GateKind::kRx, {0}, {0.5}, 2},
        isa::Instruction{GateKind::kRx, {1}, {0.5}, 2}}},
      {2, {isa::Instruction{GateKind::kCz, {0, 1}, {}, 1}}},
  };
  isa::TimedProgram program("clean", 20.0, 4, bundles);
  ASSERT_TRUE(isa::program_is_valid(program, dev));
  EXPECT_TRUE(analyze_timed_program(program, dev).empty());
}

TEST(TimedProgram, Qfs007ParityAcrossFlatAndLegacyIr) {
  // The QFS007 contract must not depend on which IR drove scheduling:
  // compile + schedule + lower under each mode and require the timed
  // program and its full diagnostic list to be identical. A flat-path
  // scheduling divergence would show up here as asymmetric findings.
  device::Device dev = device::surface17_device();
  workloads::SuiteOptions suite_opts;
  suite_opts.random_count = 4;
  suite_opts.real_count = 4;
  suite_opts.reversible_count = 2;
  suite_opts.max_qubits = 17;
  suite_opts.max_gates = 400;
  qfs::Rng suite_rng(21);
  auto suite = workloads::make_suite(suite_opts, suite_rng);

  auto run_mode = [&](circuit::IrMode mode, const Circuit& source,
                      std::uint64_t seed) {
    struct Outcome {
      std::string program_text;
      std::vector<Diagnostic> diags;
    };
    circuit::set_ir_mode_for_testing(mode);
    mapper::MappingOptions options;
    options.placer = "degree-match";
    options.router = "lookahead";
    qfs::Rng rng(seed);
    mapper::MappingResult result =
        mapper::map_circuit(source, dev, options, rng);
    compiler::Schedule schedule = compiler::asap_schedule(result.mapped, dev);
    isa::TimedProgram program =
        isa::lower_to_timed_program(result.mapped, schedule);
    Outcome outcome;
    outcome.program_text = program.to_text();
    outcome.diags = analyze_timed_program(program, dev);
    circuit::set_ir_mode_for_testing(circuit::IrMode::kFlat);
    return outcome;
  };

  for (std::size_t i = 0; i < suite.size(); ++i) {
    auto flat = run_mode(circuit::IrMode::kFlat, suite[i].circuit, i);
    auto legacy = run_mode(circuit::IrMode::kLegacy, suite[i].circuit, i);
    EXPECT_EQ(flat.program_text, legacy.program_text) << suite[i].name;
    EXPECT_EQ(flat.diags, legacy.diags) << suite[i].name;
    // The compiled suite programs are well-formed: schedule checkers stay
    // silent in both modes (so the parity above is not vacuous agreement
    // on some shared failure).
    EXPECT_TRUE(flat.diags.empty())
        << suite[i].name << ":\n"
        << render_diagnostics(flat.diags);
  }
}

// ---------------------------------------------------------------------------
// Source-level linting
// ---------------------------------------------------------------------------

TEST(LintSource, MapsParserRangeErrorToQfs001) {
  auto diags = lint_source(
      "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[7];\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "QFS001");
  EXPECT_EQ(diags[0].location.line, 3);
}

TEST(LintSource, MapsRepeatedOperandToQfs002) {
  auto diags = lint_source("OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "QFS002");
  EXPECT_EQ(diags[0].location.line, 3);
}

TEST(LintSource, MapsOtherParseErrorsToQfs100) {
  auto diags = lint_source("OPENQASM 2.0;\nqreg q[2];\nwat q[0];\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].code, "QFS100");
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(LintSource, CleanSourceRunsCircuitCheckers) {
  auto diags =
      lint_source("OPENQASM 2.0;\nqreg q[2];\nh q[0];\n");  // q[1] idle
  EXPECT_TRUE(contains_code(diags, "QFS004"));
  EXPECT_FALSE(has_errors(diags));
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(Rendering, HumanFormatIncludesSourceLocationAndCode) {
  Diagnostic d;
  d.code = "QFS001";
  d.severity = Severity::kError;
  d.message = "qubit operand 5 out of range";
  d.location.gate_index = 4;
  EXPECT_EQ(diagnostic_to_string(d, "in.qasm"),
            "in.qasm: gate 4: error[QFS001]: qubit operand 5 out of range");
  d.location.line = 12;  // line wins over gate index
  EXPECT_EQ(diagnostic_to_string(d),
            "line 12: error[QFS001]: qubit operand 5 out of range");
}

TEST(Rendering, JsonOmitsUnknownLocationFields) {
  Diagnostic d;
  d.code = "QFS009";
  d.severity = Severity::kError;
  d.message = "too wide";
  std::string json = diagnostics_to_json({d}).to_string();
  EXPECT_NE(json.find("\"code\":\"QFS009\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_EQ(json.find("\"line\""), std::string::npos);
  EXPECT_EQ(json.find("\"gate\""), std::string::npos);
}

TEST(Rendering, SummaryCountsBySeverity) {
  Diagnostic e;
  e.severity = Severity::kError;
  Diagnostic w;
  w.severity = Severity::kWarning;
  EXPECT_EQ(diagnostic_summary({e, w, w}), "1 error, 2 warnings");
  EXPECT_EQ(diagnostic_summary({}), "0 errors, 0 warnings");
}

// ---------------------------------------------------------------------------
// Pass-check adapter
// ---------------------------------------------------------------------------

TEST(PassCheck, ReportsOnlyErrors) {
  device::Device dev = device::line_device(4);
  CheckOptions opts;
  opts.device = &dev;
  opts.physical = true;
  auto check = make_pass_check(opts);

  Circuit idle_warning_only(4);
  idle_warning_only.rz(0.5, 0);
  EXPECT_TRUE(check(idle_warning_only).empty());

  Circuit broken(4);
  broken.h(0);  // non-native for the surface-code set
  auto findings = check(broken);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].code, "QFS005");
  EXPECT_NE(findings[0].message.find("gate 0"), std::string::npos);
}

}  // namespace
}  // namespace qfs::analysis
