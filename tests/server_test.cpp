// In-process tests for the qfsd network engine: wire framing, the control
// ops, typed error handling for hostile lines (a malformed request must
// never kill the daemon), bounded admission, per-request deadlines, and
// concurrent clients sharing one server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/server.h"
#include "support/json.h"

namespace qfs::service {
namespace {

const char* kBellQasm =
    "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";

/// Minimal blocking line-protocol client for the tests.
class Client {
 public:
  explicit Client(const std::string& endpoint) { connect(endpoint); }

 private:
  // ASSERT_* needs a void function, so the constructor delegates.
  void connect(const std::string& endpoint) {
    if (endpoint.rfind("unix:", 0) == 0) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      ASSERT_GE(fd_, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::string path = endpoint.substr(5);
      ASSERT_LT(path.size(), sizeof(addr.sun_path));
      std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
      ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)),
                0)
          << "connect " << endpoint << ": " << std::strerror(errno);
    } else {
      // "tcp:127.0.0.1:<port>"
      std::size_t colon = endpoint.rfind(':');
      int port = std::stoi(endpoint.substr(colon + 1));
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd_, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)),
                0)
          << "connect " << endpoint << ": " << std::strerror(errno);
    }
  }

 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  void send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      ASSERT_GT(n, 0) << "send: " << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Next '\n'-terminated line, or "" on EOF.
  std::string read_line() {
    while (true) {
      std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  JsonValue read_json() {
    std::string line = read_line();
    EXPECT_FALSE(line.empty()) << "connection closed mid-conversation";
    auto parsed = JsonValue::parse(line);
    EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string() << ": "
                                << line;
    return parsed.is_ok() ? parsed.value() : JsonValue::object();
  }

  bool eof() { return read_line().empty(); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string field(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  return (m != nullptr && m->is_string()) ? m->as_string() : "";
}

class ServerTest : public ::testing::Test {
 protected:
  void start(ServerConfig config) {
    server_ = std::make_unique<Server>(std::move(config));
    qfs::Status status = server_->start();
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->shutdown();
      server_->wait();
    }
  }

  ServerConfig tcp_config() {
    ServerConfig config;
    config.listen = "tcp:0";  // ephemeral loopback port
    config.workers = 2;
    return config;
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingOverTcp) {
  start(tcp_config());
  Client client(server_->endpoint());
  client.send_line("{\"op\":\"ping\"}");
  JsonValue resp = client.read_json();
  EXPECT_TRUE(resp.find("ok")->as_bool());
  EXPECT_EQ(field(resp, "op"), "ping");
}

TEST_F(ServerTest, PingOverUnixSocket) {
  ServerConfig config = tcp_config();
  config.listen =
      "unix:/tmp/qfsd-test-" + std::to_string(::getpid()) + ".sock";
  start(config);
  Client client(server_->endpoint());
  client.send_line("{\"op\":\"ping\"}");
  EXPECT_TRUE(client.read_json().find("ok")->as_bool());
}

TEST_F(ServerTest, CompilesOverTheWire) {
  start(tcp_config());
  Client client(server_->endpoint());
  JsonValue req = JsonValue::object();
  req.set("id", JsonValue::string("t-1"));
  req.set("qasm", JsonValue::string(kBellQasm));
  client.send_line(req.to_string());
  JsonValue resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "t-1");
  EXPECT_TRUE(resp.find("ok")->as_bool()) << field(resp, "error");
  EXPECT_EQ(field(resp, "code"), "ok");
  const JsonValue* metrics = resp.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(field(*metrics, "device"), "surface-17");
  EXPECT_EQ(field(*metrics, "mapped_digest").size(), 32u);
}

TEST_F(ServerTest, MalformedLinesNeverKillTheConnection) {
  start(tcp_config());
  Client client(server_->endpoint());

  client.send_line("this is not json");
  JsonValue resp = client.read_json();
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_EQ(field(resp, "code"), "invalid_request");

  client.send_line("{\"qasm\":\"x\",\"qasm\":\"y\"}");  // duplicate key
  EXPECT_EQ(field(client.read_json(), "code"), "invalid_request");

  client.send_line("{\"id\":\"bad-1\",\"qasm\":\"x\",\"plaser\":\"a\"}");
  resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "bad-1");  // id echoed even when rejected
  EXPECT_EQ(field(resp, "code"), "invalid_request");

  // The same connection still serves a valid request afterwards.
  JsonValue req = JsonValue::object();
  req.set("id", JsonValue::string("after"));
  req.set("qasm", JsonValue::string(kBellQasm));
  client.send_line(req.to_string());
  resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "after");
  EXPECT_TRUE(resp.find("ok")->as_bool());
}

TEST_F(ServerTest, UnparsableQasmIsATypedResponse) {
  start(tcp_config());
  Client client(server_->endpoint());
  client.send_line("{\"id\":\"p-1\",\"qasm\":\"qreg q[1]; bogus q[0];\"}");
  JsonValue resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "p-1");
  EXPECT_EQ(field(resp, "code"), "parse_error");
}

TEST_F(ServerTest, UnknownOpIsRejected) {
  start(tcp_config());
  Client client(server_->endpoint());
  client.send_line("{\"op\":\"reboot\"}");
  JsonValue resp = client.read_json();
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_NE(field(resp, "error").find("unknown op"), std::string::npos);
}

TEST_F(ServerTest, ExpiredDeadlineIsTyped) {
  start(tcp_config());
  Client client(server_->endpoint());
  JsonValue req = JsonValue::object();
  req.set("id", JsonValue::string("d-1"));
  req.set("qasm", JsonValue::string(kBellQasm));
  req.set("deadline_ms", JsonValue::integer(0));  // already expired
  client.send_line(req.to_string());
  JsonValue resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "d-1");
  EXPECT_EQ(field(resp, "code"), "deadline_exceeded");
  // The worker bumps the counter after flushing the response.
  for (int i = 0; i < 200 && server_->counters().deadline_expired == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->counters().deadline_expired, 1u);
}

TEST_F(ServerTest, OversizedCircuitIsTyped) {
  ServerConfig config = tcp_config();
  config.service.max_source_bytes = 32;
  start(config);
  Client client(server_->endpoint());
  JsonValue req = JsonValue::object();
  req.set("id", JsonValue::string("big"));
  req.set("qasm", JsonValue::string(kBellQasm));  // > 32 bytes
  client.send_line(req.to_string());
  JsonValue resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "big");
  EXPECT_EQ(field(resp, "code"), "resource_exhausted");
}

TEST_F(ServerTest, OverlongLineClosesTheConnection) {
  ServerConfig config = tcp_config();
  config.max_line_bytes = 256;
  start(config);
  Client client(server_->endpoint());
  // An unterminated line past the limit: framing cannot be trusted, so the
  // server answers once and hangs up.
  client.send_raw("{\"qasm\":\"" + std::string(1024, 'h'));
  JsonValue resp = client.read_json();
  EXPECT_EQ(field(resp, "code"), "resource_exhausted");
  EXPECT_TRUE(client.eof());
}

TEST_F(ServerTest, AdmissionQueueBouncesWhenFull) {
  ServerConfig config = tcp_config();
  config.workers = 1;
  config.max_queue = 1;
  start(config);
  Client client(server_->endpoint());

  // Pipeline a burst: with one worker and one in-flight slot, the reader
  // admits the first slow request and must bounce most of the rest with a
  // typed resource_exhausted instead of queueing without bound. A slow
  // placer keeps the worker busy long enough to make the race one-sided.
  JsonValue req = JsonValue::object();
  req.set("qasm", JsonValue::string(kBellQasm));
  req.set("placer", JsonValue::string("annealing"));
  req.set("sabre", JsonValue::integer(4));
  std::string line = req.to_string();
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) client.send_line(line);

  int bounced = 0, served = 0;
  for (int i = 0; i < kBurst; ++i) {
    JsonValue resp = client.read_json();
    if (field(resp, "code") == "resource_exhausted") {
      EXPECT_NE(field(resp, "error").find("admission queue full"),
                std::string::npos);
      ++bounced;
    } else {
      EXPECT_EQ(field(resp, "code"), "ok");
      ++served;
    }
  }
  EXPECT_GT(served, 0);
  EXPECT_GT(bounced, 0);
  const auto expected_rejected = static_cast<std::uint64_t>(bounced);
  for (int i = 0;
       i < 200 && server_->counters().rejected < expected_rejected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->counters().rejected, expected_rejected);
}

TEST_F(ServerTest, StatsOpReportsCounters) {
  start(tcp_config());
  Client client(server_->endpoint());
  JsonValue req = JsonValue::object();
  req.set("qasm", JsonValue::string(kBellQasm));
  client.send_line(req.to_string());
  client.read_json();

  client.send_line("{\"op\":\"stats\"}");
  JsonValue stats = client.read_json();
  EXPECT_TRUE(stats.find("ok")->as_bool());
  const JsonValue* server = stats.find("server");
  ASSERT_NE(server, nullptr);
  const JsonValue* requests = server->find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->as_integer(), 1);
}

TEST_F(ServerTest, ShutdownOpDrainsAndStops) {
  start(tcp_config());
  Client client(server_->endpoint());
  client.send_line("{\"op\":\"shutdown\"}");
  JsonValue ack = client.read_json();
  EXPECT_TRUE(ack.find("ok")->as_bool());
  server_->wait();  // returns once the graceful drain completes
  // New connections are refused after shutdown.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  std::size_t colon = server_->endpoint().rfind(':');
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(
      std::stoi(server_->endpoint().substr(colon + 1))));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
}

TEST_F(ServerTest, MidWriteClientDisconnectDoesNotKillTheDaemon) {
  start(tcp_config());

  // A fat circuit with emit_qasm makes each response tens of kilobytes;
  // eight of them pipelined and then an immediate close leaves the writer
  // flushing into a dead socket. Without MSG_NOSIGNAL that's a SIGPIPE and
  // the whole test process dies — this is the regression pin.
  std::string fat = "OPENQASM 2.0;\nqreg q[5];\n";
  for (int i = 0; i < 1200; ++i) {
    // Alternate h/x per wire so no optimizer can cancel the body away.
    fat += (i % 2 == 0 ? "h q[" : "x q[") + std::to_string(i % 5) + "];\n";
  }
  JsonValue req = JsonValue::object();
  req.set("qasm", JsonValue::string(fat));
  req.set("emit_qasm", JsonValue::boolean(true));
  std::string line = req.to_string();
  {
    Client doomed(server_->endpoint());
    for (int i = 0; i < 8; ++i) doomed.send_line(line);
    // Destructor closes the socket with every response still in flight.
  }

  // The daemon is still alive and still serves a fresh connection.
  Client client(server_->endpoint());
  JsonValue probe = JsonValue::object();
  probe.set("id", JsonValue::string("alive"));
  probe.set("qasm", JsonValue::string(kBellQasm));
  client.send_line(probe.to_string());
  JsonValue resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "alive");
  EXPECT_TRUE(resp.find("ok")->as_bool()) << field(resp, "error");
}

TEST_F(ServerTest, ChaosFieldIsRejectedWithoutChaosWorkers) {
  start(tcp_config());  // in-process compilation: no supervised workers
  Client client(server_->endpoint());
  JsonValue req = JsonValue::object();
  req.set("id", JsonValue::string("x-1"));
  req.set("qasm", JsonValue::string(kBellQasm));
  req.set("chaos", JsonValue::string("crash"));
  client.send_line(req.to_string());
  JsonValue resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "x-1");
  EXPECT_EQ(field(resp, "code"), "invalid_request");
  EXPECT_NE(field(resp, "error").find("chaos"), std::string::npos);

  // An unknown chaos verb is rejected at the codec layer.
  req.set("chaos", JsonValue::string("explode"));
  client.send_line(req.to_string());
  EXPECT_EQ(field(client.read_json(), "code"), "invalid_request");

  // The same connection still compiles without the field.
  JsonValue clean = JsonValue::object();
  clean.set("id", JsonValue::string("x-2"));
  clean.set("qasm", JsonValue::string(kBellQasm));
  client.send_line(clean.to_string());
  resp = client.read_json();
  EXPECT_EQ(field(resp, "id"), "x-2");
  EXPECT_TRUE(resp.find("ok")->as_bool());
}

TEST_F(ServerTest, ConcurrentClientsAllSucceed) {
  ServerConfig config = tcp_config();
  config.workers = 4;
  start(config);

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 5;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      Client client(server_->endpoint());
      for (int i = 0; i < kRequestsPerClient; ++i) {
        JsonValue req = JsonValue::object();
        req.set("id", JsonValue::string(std::to_string(c) + "-" +
                                        std::to_string(i)));
        req.set("qasm", JsonValue::string(kBellQasm));
        client.send_line(req.to_string());
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        JsonValue resp = client.read_json();
        if (resp.find("ok") != nullptr && resp.find("ok")->as_bool()) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequestsPerClient);
  // Workers bump the counters after flushing the response, so give the
  // last few tasks a moment to finish their accounting.
  const auto expected =
      static_cast<std::uint64_t>(kClients * kRequestsPerClient);
  for (int i = 0; i < 200 && server_->counters().ok < expected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->counters().ok, expected);
}

}  // namespace
}  // namespace qfs::service
