// Mutation harness for the translation validator (analysis/equiv.h):
// compile a real circuit, corrupt the artifact one defect class at a
// time, and prove each corruption is caught with its expected QFS code
// while the unmutated artifact validates clean. This is the detection
// proof the ISSUE demands — a validator that never fires is
// indistinguishable from one that always passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/equiv.h"
#include "circuit/circuit.h"
#include "compiler/schedule.h"
#include "device/device.h"
#include "isa/timed_program.h"
#include "mapper/pipeline.h"
#include "support/rng.h"
#include "workloads/algorithms.h"

namespace qfs::analysis {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

/// One compiled artifact plus everything needed to (re)validate it.
struct Compiled {
  Circuit source{1};
  device::Device device = device::surface17_device();
  mapper::MappingResult result;
};

/// GHZ-like source with measurements, compiled with a router that is
/// guaranteed to insert swaps on surface-17 (the chain spans the chip).
Compiled compile_fixture() {
  Compiled c;
  Circuit src(8, "mutant-fixture");
  src.h(0);
  for (int q = 0; q + 1 < 8; ++q) src.cx(q, q + 1);
  for (int q = 0; q < 8; ++q) src.measure(q);
  c.source = src;
  mapper::MappingOptions options;
  options.placer = "degree-match";
  options.router = "lookahead";
  qfs::Rng rng(7);
  c.result = mapper::map_circuit(c.source, c.device, options, rng);
  return c;
}

TranslationArtifact artifact_of(const Compiled& c, const Circuit& mapped) {
  TranslationArtifact a;
  a.mapped = &mapped;
  a.initial_layout = c.result.initial_layout;
  a.final_layout = c.result.final_layout;
  a.swaps_inserted = c.result.swaps_inserted;
  return a;
}

std::set<std::string> codes_of(const Compiled& c,
                               const TranslationArtifact& a) {
  std::set<std::string> codes;
  for (const Diagnostic& d : validate_translation(c.source, c.device, a)) {
    codes.insert(d.code);
  }
  return codes;
}

/// Rebuild `mapped` with one gate-level edit applied by the callback
/// (Circuit exposes no mutable gate access, deliberately).
template <typename Fn>
Circuit mutate_gates(const Circuit& mapped, Fn&& edit) {
  std::vector<Gate> gates = mapped.gates();
  edit(gates);
  Circuit out(mapped.num_qubits(), mapped.name());
  for (const Gate& g : gates) out.add(g);
  return out;
}

TEST(EquivMutation, FixtureInsertsSwapsAndValidatesClean) {
  Compiled c = compile_fixture();
  ASSERT_GT(c.result.swaps_inserted, 0)
      << "fixture must exercise permutation tracking";
  TranslationArtifact a = artifact_of(c, c.result.mapped);
  std::vector<Diagnostic> findings =
      validate_translation(c.source, c.device, a);
  EXPECT_TRUE(findings.empty())
      << render_diagnostics(findings, "fixture");
}

TEST(EquivMutation, TruncatedLayoutIsQFS101) {
  Compiled c = compile_fixture();
  TranslationArtifact a = artifact_of(c, c.result.mapped);
  a.initial_layout.pop_back();
  EXPECT_TRUE(codes_of(c, a).count("QFS101"));
}

TEST(EquivMutation, DuplicatePlacementIsQFS101) {
  Compiled c = compile_fixture();
  TranslationArtifact a = artifact_of(c, c.result.mapped);
  a.initial_layout[1] = a.initial_layout[0];  // two virtuals, one physical
  EXPECT_TRUE(codes_of(c, a).count("QFS101"));
}

TEST(EquivMutation, DuplicatedGateIsQFS102) {
  Compiled c = compile_fixture();
  // Duplicate the last gate (a measurement): the copy has no pending
  // source gate left to realize.
  Circuit mutated = mutate_gates(c.result.mapped, [](std::vector<Gate>& g) {
    g.push_back(g.back());
  });
  TranslationArtifact a = artifact_of(c, mutated);
  EXPECT_TRUE(codes_of(c, a).count("QFS102"));
}

TEST(EquivMutation, ReorderedDependentGatesAreQFS102) {
  Compiled c = compile_fixture();
  const auto& gates = c.result.mapped.gates();
  // Find two adjacent non-identical gates sharing a qubit: swapping them
  // breaks the per-qubit dependency order the matcher enforces.
  int pos = -1;
  for (int i = 0; i + 1 < static_cast<int>(gates.size()); ++i) {
    const Gate& x = gates[static_cast<std::size_t>(i)];
    const Gate& y = gates[static_cast<std::size_t>(i + 1)];
    if (x == y) continue;
    bool shared = false;
    for (int q : x.qubits) {
      shared = shared ||
               std::find(y.qubits.begin(), y.qubits.end(), q) != y.qubits.end();
    }
    if (shared) {
      pos = i;
      break;
    }
  }
  ASSERT_GE(pos, 0);
  Circuit mutated = mutate_gates(c.result.mapped, [pos](std::vector<Gate>& g) {
    std::swap(g[static_cast<std::size_t>(pos)],
              g[static_cast<std::size_t>(pos + 1)]);
  });
  TranslationArtifact a = artifact_of(c, mutated);
  std::set<std::string> codes = codes_of(c, a);
  // The misordered pair surfaces as an unmatched gate; depending on which
  // gate leads it can also look like a parameter mismatch on the same
  // source gate. Either way the artifact is rejected with a match error.
  EXPECT_TRUE(codes.count("QFS102") || codes.count("QFS104"))
      << "got: " << *codes.begin();
}

TEST(EquivMutation, DroppedGateIsQFS103) {
  Compiled c = compile_fixture();
  // Drop the final measurement: every other gate still matches, but one
  // source gate is never realized.
  Circuit mutated = mutate_gates(c.result.mapped,
                                 [](std::vector<Gate>& g) { g.pop_back(); });
  TranslationArtifact a = artifact_of(c, mutated);
  EXPECT_TRUE(codes_of(c, a).count("QFS103"));
}

TEST(EquivMutation, PerturbedParameterIsQFS104) {
  Compiled c = compile_fixture();
  const auto& gates = c.result.mapped.gates();
  int pos = -1;
  for (int i = 0; i < static_cast<int>(gates.size()); ++i) {
    if (!gates[static_cast<std::size_t>(i)].params.empty()) {
      pos = i;
      break;
    }
  }
  ASSERT_GE(pos, 0) << "fixture must contain a parametrised gate";
  Circuit mutated = mutate_gates(c.result.mapped, [pos](std::vector<Gate>& g) {
    g[static_cast<std::size_t>(pos)].params[0] += 1e-3;
  });
  TranslationArtifact a = artifact_of(c, mutated);
  EXPECT_TRUE(codes_of(c, a).count("QFS104"));
}

TEST(EquivMutation, RetargetedCouplerIsQFS105) {
  Compiled c = compile_fixture();
  const device::Topology& topology = c.device.topology();
  const auto& gates = c.result.mapped.gates();
  // Retarget one two-qubit gate onto a non-adjacent physical pair.
  int pos = -1;
  int bad = -1;
  for (int i = 0; i < static_cast<int>(gates.size()) && pos < 0; ++i) {
    const Gate& g = gates[static_cast<std::size_t>(i)];
    if (g.qubits.size() != 2) continue;
    for (int p = 0; p < c.device.num_qubits(); ++p) {
      if (p == g.qubits[0] || topology.adjacent(g.qubits[0], p)) continue;
      pos = i;
      bad = p;
      break;
    }
  }
  ASSERT_GE(pos, 0);
  Circuit mutated =
      mutate_gates(c.result.mapped, [pos, bad](std::vector<Gate>& g) {
        g[static_cast<std::size_t>(pos)].qubits[1] = bad;
      });
  TranslationArtifact a = artifact_of(c, mutated);
  EXPECT_TRUE(codes_of(c, a).count("QFS105"));
}

TEST(EquivMutation, NonNativeGateIsQFS106) {
  Compiled c = compile_fixture();
  ASSERT_FALSE(c.device.gateset().supports(GateKind::kT));
  Circuit mutated = mutate_gates(c.result.mapped, [](std::vector<Gate>& g) {
    g.push_back(circuit::make_gate(GateKind::kT, {0}));
  });
  TranslationArtifact a = artifact_of(c, mutated);
  EXPECT_TRUE(codes_of(c, a).count("QFS106"));
}

TEST(EquivMutation, OffPermutationFinalLayoutIsQFS107) {
  Compiled c = compile_fixture();
  TranslationArtifact a = artifact_of(c, c.result.mapped);
  std::swap(a.final_layout[0], a.final_layout[1]);
  EXPECT_TRUE(codes_of(c, a).count("QFS107"));
}

TEST(EquivMutation, OffPermutationMeasurementIsCaught) {
  Compiled c = compile_fixture();
  const auto& gates = c.result.mapped.gates();
  // Redirect the last measurement to a different physical qubit: the
  // readout no longer observes the virtual qubit the source measured.
  int pos = -1;
  for (int i = static_cast<int>(gates.size()) - 1; i >= 0; --i) {
    if (gates[static_cast<std::size_t>(i)].kind == GateKind::kMeasure) {
      pos = i;
      break;
    }
  }
  ASSERT_GE(pos, 0);
  int other = (gates[static_cast<std::size_t>(pos)].qubits[0] + 1) %
              c.device.num_qubits();
  Circuit mutated =
      mutate_gates(c.result.mapped, [pos, other](std::vector<Gate>& g) {
        g[static_cast<std::size_t>(pos)].qubits[0] = other;
      });
  TranslationArtifact a = artifact_of(c, mutated);
  std::set<std::string> codes = codes_of(c, a);
  EXPECT_TRUE(codes.count("QFS102") || codes.count("QFS103"));
}

TEST(EquivMutation, WrongSwapCountIsQFS109) {
  Compiled c = compile_fixture();
  TranslationArtifact a = artifact_of(c, c.result.mapped);
  a.swaps_inserted += 1;
  EXPECT_TRUE(codes_of(c, a).count("QFS109"));
  a.swaps_inserted = -1;  // metadata withheld: the cross-check is skipped
  EXPECT_TRUE(codes_of(c, a).empty());
}

TEST(EquivMutation, ReversedCxOperandsAreQFS110) {
  // CX is order-sensitive, so use the IBM-style heavy-hex device whose
  // native two-qubit gate is CX (surface-17's CZ is symmetric, and a
  // reversed CZ still fails — but as a generic mismatch).
  Compiled c;
  c.device = device::heavy_hex27_device();
  Circuit src(6, "reversed-cx");
  src.h(0);
  for (int q = 0; q + 1 < 6; ++q) src.cx(q, q + 1);
  c.source = src;
  mapper::MappingOptions options;
  options.placer = "degree-match";
  options.router = "lookahead";
  qfs::Rng rng(3);
  c.result = mapper::map_circuit(c.source, c.device, options, rng);
  {
    TranslationArtifact a = artifact_of(c, c.result.mapped);
    ASSERT_TRUE(translation_is_valid(c.source, c.device, a));
  }

  const auto& gates = c.result.mapped.gates();
  // Reverse the operands of a CX that is not part of a swap expansion
  // (inside a swap window the reversal re-shapes the window instead of
  // producing a clean operand-order finding). Mutate each candidate until
  // one yields QFS110.
  bool found = false;
  for (int i = 0; i < static_cast<int>(gates.size()) && !found; ++i) {
    const Gate& g = gates[static_cast<std::size_t>(i)];
    if (g.kind != GateKind::kCx) continue;
    Circuit mutated = mutate_gates(c.result.mapped, [i](std::vector<Gate>& m) {
      std::swap(m[static_cast<std::size_t>(i)].qubits[0],
                m[static_cast<std::size_t>(i)].qubits[1]);
    });
    TranslationArtifact a = artifact_of(c, mutated);
    std::set<std::string> codes = codes_of(c, a);
    EXPECT_FALSE(codes.empty()) << "reversed CX at " << i << " not caught";
    found = codes.count("QFS110") > 0;
  }
  EXPECT_TRUE(found) << "no reversed CX produced an operand-order finding";
}

TEST(EquivMutation, ScheduleCorruptionIsQFS108) {
  Compiled c = compile_fixture();
  compiler::ScheduleOptions sched;
  compiler::Schedule schedule =
      compiler::asap_schedule(c.result.mapped, c.device, sched);
  isa::TimedProgram program =
      isa::lower_to_timed_program(c.result.mapped, schedule);
  {
    TranslationArtifact a = artifact_of(c, c.result.mapped);
    a.timed = &program;
    EXPECT_TRUE(codes_of(c, a).empty()) << "clean schedule must validate";
  }

  // (a) Non-positive duration.
  {
    std::vector<isa::Bundle> bundles = program.bundles();
    ASSERT_FALSE(bundles.empty());
    ASSERT_FALSE(bundles.front().instructions.empty());
    bundles.front().instructions.front().duration_cycles = 0;
    isa::TimedProgram mutated(program.name(), program.cycle_time_ns(),
                              program.num_qubits(), std::move(bundles));
    TranslationArtifact a = artifact_of(c, c.result.mapped);
    a.timed = &mutated;
    EXPECT_TRUE(codes_of(c, a).count("QFS108"));
  }

  // (b) Double-booking: stretch one instruction across the rest of the
  // program so it overlaps every later use of its qubit.
  {
    std::vector<isa::Bundle> bundles = program.bundles();
    bundles.front().instructions.front().duration_cycles = 100000;
    isa::TimedProgram mutated(program.name(), program.cycle_time_ns(),
                              program.num_qubits(), std::move(bundles));
    TranslationArtifact a = artifact_of(c, c.result.mapped);
    a.timed = &mutated;
    EXPECT_TRUE(codes_of(c, a).count("QFS108"));
  }

  // (c) The program must carry the mapped circuit's gates: change one
  // instruction's kind.
  {
    std::vector<isa::Bundle> bundles = program.bundles();
    isa::Instruction& instr = bundles.front().instructions.front();
    instr.kind = instr.kind == GateKind::kRy ? GateKind::kRz : GateKind::kRy;
    instr.params.assign(static_cast<std::size_t>(
                            circuit::gate_param_count(instr.kind)),
                        0.25);
    isa::TimedProgram mutated(program.name(), program.cycle_time_ns(),
                              program.num_qubits(), std::move(bundles));
    TranslationArtifact a = artifact_of(c, c.result.mapped);
    a.timed = &mutated;
    EXPECT_TRUE(codes_of(c, a).count("QFS108"));
  }
}

TEST(EquivMutation, MaxDiagnosticsBoundsTheCascade) {
  Compiled c = compile_fixture();
  // Scramble everything: structure stays legal but nothing matches.
  Circuit mutated = mutate_gates(c.result.mapped, [](std::vector<Gate>& g) {
    std::reverse(g.begin(), g.end());
  });
  TranslationArtifact a = artifact_of(c, mutated);
  EquivOptions options;
  options.max_diagnostics = 2;
  std::vector<Diagnostic> findings =
      validate_translation(c.source, c.device, a, options);
  EXPECT_FALSE(findings.empty());
  EXPECT_LE(static_cast<int>(findings.size()), 2);
}

}  // namespace
}  // namespace qfs::analysis
