#include <gtest/gtest.h>

#include <cmath>

#include "device/device.h"
#include "mapper/pipeline.h"
#include "sim/equivalence.h"
#include "sim/stabilizer.h"
#include "sim/statevector.h"
#include "workloads/algorithms.h"
#include "workloads/reversible.h"

namespace qfs::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;

TEST(Stabilizer, CliffordGateClassification) {
  EXPECT_TRUE(is_clifford_gate(GateKind::kH));
  EXPECT_TRUE(is_clifford_gate(GateKind::kS));
  EXPECT_TRUE(is_clifford_gate(GateKind::kCx));
  EXPECT_TRUE(is_clifford_gate(GateKind::kCz));
  EXPECT_TRUE(is_clifford_gate(GateKind::kSwap));
  EXPECT_FALSE(is_clifford_gate(GateKind::kT));
  EXPECT_FALSE(is_clifford_gate(GateKind::kRz));
  EXPECT_FALSE(is_clifford_gate(GateKind::kCcx));
}

TEST(Stabilizer, CliffordCircuitClassification) {
  Circuit clifford(2);
  clifford.h(0).cx(0, 1).s(1);
  EXPECT_TRUE(is_clifford_circuit(clifford));
  Circuit with_t(2);
  with_t.h(0).t(0);
  EXPECT_FALSE(is_clifford_circuit(with_t));
  Circuit with_measure(1);
  with_measure.measure(0);
  EXPECT_FALSE(is_clifford_circuit(with_measure));
}

TEST(Stabilizer, InitialStateStabilizedByZ) {
  StabilizerState s(3);
  EXPECT_EQ(s.stabilizer_string(0), "+ZII");
  EXPECT_EQ(s.stabilizer_string(1), "+IZI");
  EXPECT_EQ(s.stabilizer_string(2), "+IIZ");
}

TEST(Stabilizer, HadamardMovesZToX) {
  StabilizerState s(1);
  s.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  EXPECT_EQ(s.stabilizer_string(0), "+X");
}

TEST(Stabilizer, XFlipsSign) {
  StabilizerState s(1);
  s.apply_gate(circuit::make_gate(GateKind::kX, {0}));
  EXPECT_EQ(s.stabilizer_string(0), "-Z");
}

TEST(Stabilizer, BellStateStabilizers) {
  StabilizerState s(2);
  Circuit bell(2);
  bell.h(0).cx(0, 1);
  s.apply_circuit(bell);
  auto canon = s.canonical_stabilizers();
  // Bell state: stabilized by +XX and +ZZ.
  EXPECT_NE(std::find(canon.begin(), canon.end(), "+XX"), canon.end());
  EXPECT_NE(std::find(canon.begin(), canon.end(), "+ZZ"), canon.end());
}

TEST(Stabilizer, DeterministicMeasurementOfComputationalState) {
  qfs::Rng rng(1);
  StabilizerState s(2);
  s.apply_gate(circuit::make_gate(GateKind::kX, {1}));
  EXPECT_TRUE(s.is_deterministic(0));
  EXPECT_TRUE(s.is_deterministic(1));
  EXPECT_FALSE(s.measure(0, rng));
  EXPECT_TRUE(s.measure(1, rng));
}

TEST(Stabilizer, RandomMeasurementCollapses) {
  qfs::Rng rng(2);
  StabilizerState s(1);
  s.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  EXPECT_FALSE(s.is_deterministic(0));
  bool outcome = s.measure(0, rng);
  // After collapse the outcome repeats deterministically.
  EXPECT_TRUE(s.is_deterministic(0));
  EXPECT_EQ(s.measure(0, rng), outcome);
}

TEST(Stabilizer, GhzCorrelations) {
  qfs::Rng rng(3);
  int agree = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    StabilizerState s(3);
    Circuit ghz(3);
    ghz.h(0).cx(0, 1).cx(1, 2);
    s.apply_circuit(ghz);
    bool a = s.measure(0, rng);
    bool b = s.measure(1, rng);
    bool c = s.measure(2, rng);
    if (a == b && b == c) ++agree;
  }
  EXPECT_EQ(agree, trials);  // GHZ outcomes are perfectly correlated
}

TEST(Stabilizer, MeasurementStatisticsUniform) {
  qfs::Rng rng(4);
  int ones = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    StabilizerState s(1);
    s.apply_gate(circuit::make_gate(GateKind::kH, {0}));
    if (s.measure(0, rng)) ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.5, 0.08);
}

TEST(Stabilizer, SameStateDetectsEqualAndDifferent) {
  StabilizerState a(2), b(2), c(2);
  Circuit bell(2);
  bell.h(0).cx(0, 1);
  a.apply_circuit(bell);
  // Same Bell state built differently: h(1); cx(1,0).
  Circuit bell2(2);
  bell2.h(1).cx(1, 0);
  b.apply_circuit(bell2);
  EXPECT_TRUE(StabilizerState::same_state(a, b));
  c.apply_gate(circuit::make_gate(GateKind::kX, {0}));
  EXPECT_FALSE(StabilizerState::same_state(a, c));
}

TEST(Stabilizer, SignsDistinguishOrthogonalStates) {
  StabilizerState plus(1), minus(1);
  plus.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  minus.apply_gate(circuit::make_gate(GateKind::kX, {0}));
  minus.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  EXPECT_FALSE(StabilizerState::same_state(plus, minus));
}

TEST(Stabilizer, NonCliffordGateIsContractViolation) {
  StabilizerState s(1);
  EXPECT_THROW(s.apply_gate(circuit::make_gate(GateKind::kT, {0})),
               AssertionError);
}

// Cross-validate against the state-vector simulator on random Clifford
// circuits: measurement determinism and deterministic outcomes must agree.
TEST(Stabilizer, AgreesWithStateVectorOnCliffordCircuits) {
  qfs::Rng gen(5);
  const GateKind pool[] = {GateKind::kH,  GateKind::kS,  GateKind::kX,
                           GateKind::kZ,  GateKind::kCx, GateKind::kCz,
                           GateKind::kSdg, GateKind::kSwap};
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4;
    Circuit c(n);
    for (int i = 0; i < 25; ++i) {
      GateKind kind = pool[gen.uniform_index(std::size(pool))];
      if (circuit::gate_arity(kind) == 1) {
        c.add(kind, {gen.uniform_int(0, n - 1)});
      } else {
        auto qs = gen.sample_without_replacement(n, 2);
        c.add(kind, {qs[0], qs[1]});
      }
    }
    StabilizerState tab(n);
    tab.apply_circuit(c);
    StateVector sv(n);
    sv.apply_circuit(c);
    for (int q = 0; q < n; ++q) {
      double p1 = sv.marginal_one_probability(q);
      if (tab.is_deterministic(q)) {
        qfs::Rng rng(trial);
        StabilizerState copy = tab;
        bool outcome = copy.measure(q, rng);
        EXPECT_NEAR(p1, outcome ? 1.0 : 0.0, 1e-9)
            << "trial " << trial << " qubit " << q;
      } else {
        EXPECT_NEAR(p1, 0.5, 1e-9) << "trial " << trial << " qubit " << q;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Device-scale mapping verification
// ---------------------------------------------------------------------------

TEST(CliffordVerification, Ghz50OnSurface97) {
  // A 50-qubit GHZ is far beyond the state-vector simulator, but the
  // stabilizer check verifies the routed circuit exactly — the surface
  // gate set's cz/ry(±pi/2) network is Clifford (quarter-turn rotations).
  device::Device d = device::surface97_device();
  Circuit c = workloads::ghz(50);
  mapper::MappingOptions opts;
  opts.placer = "subgraph";
  qfs::Rng rng(6);
  mapper::MappingResult r = mapper::map_circuit(c, d, opts, rng);
  ASSERT_TRUE(is_clifford_circuit(r.mapped));
  EXPECT_TRUE(clifford_mapping_preserves_state(c, r.mapped, r.initial_layout,
                                               r.final_layout));

  // Same circuit through an IBM-basis device (rz/sx/cx network).
  device::Device ibm_like("grid", device::grid_topology(8, 8),
                          device::ibm_gateset(),
                          device::ErrorModel(0.999, 0.99, 0.99));
  mapper::MappingResult r2 = mapper::map_circuit(c, ibm_like, rng);
  ASSERT_TRUE(is_clifford_circuit(r2.mapped));
  EXPECT_TRUE(clifford_mapping_preserves_state(
      c, r2.mapped, r2.initial_layout, r2.final_layout));
}

TEST(CliffordVerification, QuarterTurnRotationsMatchStateVector) {
  // ry(pi/2), rz(-pi/2), rx(pi) etc. must act identically in both
  // simulators (up to global phase, which stabilizers ignore).
  qfs::Rng gen(9);
  Circuit c(3);
  c.ry(M_PI / 2, 0).rz(-M_PI / 2, 1).rx(M_PI, 2).cz(0, 1);
  c.p(3 * M_PI / 2, 2).ry(-M_PI / 2, 1).cx(1, 2);
  ASSERT_TRUE(is_clifford_circuit(c));
  StabilizerState tab(3);
  tab.apply_circuit(c);
  StateVector sv(3);
  sv.apply_circuit(c);
  for (int q = 0; q < 3; ++q) {
    double p1 = sv.marginal_one_probability(q);
    if (tab.is_deterministic(q)) {
      qfs::Rng rng(1);
      StabilizerState copy = tab;
      EXPECT_NEAR(p1, copy.measure(q, rng) ? 1.0 : 0.0, 1e-9) << "qubit " << q;
    } else {
      EXPECT_NEAR(p1, 0.5, 1e-9) << "qubit " << q;
    }
  }
}

TEST(CliffordVerification, NonQuarterTurnIsNotClifford) {
  Circuit c(1);
  c.rz(0.3, 0);
  EXPECT_FALSE(is_clifford_circuit(c));
  StabilizerState s(1);
  EXPECT_THROW(s.apply_gate(c.gates()[0]), AssertionError);
}

TEST(CliffordVerification, DetectsBrokenMapping) {
  device::Device d("line", device::line_topology(5),
                   device::ibm_gateset(),
                   device::ErrorModel(0.999, 0.99, 0.99));
  Circuit c = workloads::ghz(4);
  qfs::Rng rng(7);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  ASSERT_TRUE(is_clifford_circuit(r.mapped));
  EXPECT_TRUE(clifford_mapping_preserves_state(c, r.mapped, r.initial_layout,
                                               r.final_layout));
  // Corrupt: claim a wrong final layout.
  std::vector<int> wrong = r.final_layout;
  std::swap(wrong[0], wrong[1]);
  EXPECT_FALSE(
      clifford_mapping_preserves_state(c, r.mapped, r.initial_layout, wrong));
  // Corrupt: drop the last gate of the mapped circuit.
  Circuit truncated(r.mapped.num_qubits());
  for (std::size_t i = 0; i + 1 < r.mapped.size(); ++i) {
    truncated.add(r.mapped.gates()[i]);
  }
  EXPECT_FALSE(clifford_mapping_preserves_state(c, truncated, r.initial_layout,
                                                r.final_layout));
}

TEST(CliffordVerification, ReversibleNetworkOnHeavyHex) {
  // CX-only reversible circuits stay Clifford through an IBM-basis mapping.
  device::Device d = device::heavy_hex27_device();
  Circuit c = workloads::reversible_bit_reversal(10);
  qfs::Rng rng(8);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  ASSERT_TRUE(is_clifford_circuit(r.mapped));
  EXPECT_TRUE(clifford_mapping_preserves_state(c, r.mapped, r.initial_layout,
                                               r.final_layout));
}

}  // namespace
}  // namespace qfs::sim
