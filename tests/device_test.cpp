#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "device/calibration.h"
#include "device/device.h"
#include "device/fidelity.h"
#include "device/synthesis.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "mapper/pipeline.h"
#include "profile/interaction.h"
#include "workloads/algorithms.h"

namespace qfs::device {
namespace {

using circuit::Circuit;
using circuit::GateKind;

// ---------------------------------------------------------------------------
// Gate sets
// ---------------------------------------------------------------------------

TEST(GateSet, SurfaceCodeSupportsItsPrimitives) {
  GateSet gs = surface_code_gateset();
  EXPECT_TRUE(gs.supports(GateKind::kCz));
  EXPECT_TRUE(gs.supports(GateKind::kRx));
  EXPECT_TRUE(gs.supports(GateKind::kRy));
  EXPECT_FALSE(gs.supports(GateKind::kCx));
  EXPECT_FALSE(gs.supports(GateKind::kH));
  EXPECT_FALSE(gs.supports(GateKind::kCcx));
}

TEST(GateSet, NonUnitariesAlwaysSupported) {
  GateSet gs = surface_code_gateset();
  EXPECT_TRUE(gs.supports(GateKind::kMeasure));
  EXPECT_TRUE(gs.supports(GateKind::kReset));
  EXPECT_TRUE(gs.supports(GateKind::kBarrier));
}

TEST(GateSet, IbmBasis) {
  GateSet gs = ibm_gateset();
  EXPECT_TRUE(gs.supports(GateKind::kCx));
  EXPECT_TRUE(gs.supports(GateKind::kSx));
  EXPECT_TRUE(gs.supports(GateKind::kRz));
  EXPECT_FALSE(gs.supports(GateKind::kCz));
  EXPECT_FALSE(gs.supports(GateKind::kRy));
}

TEST(GateSet, UniversalSupportsEverythingUnitary) {
  GateSet gs = universal_gateset();
  for (int k = 0; k < circuit::kNumGateKinds; ++k) {
    EXPECT_TRUE(gs.supports(static_cast<GateKind>(k)));
  }
}

TEST(GateSet, SupportsCircuit) {
  GateSet gs = surface_code_gateset();
  Circuit native(2);
  native.rx(0.1, 0).cz(0, 1).measure(1);
  EXPECT_TRUE(gs.supports_circuit(native));
  Circuit foreign(2);
  foreign.h(0);
  EXPECT_FALSE(gs.supports_circuit(foreign));
}

// ---------------------------------------------------------------------------
// Error model
// ---------------------------------------------------------------------------

TEST(ErrorModel, Defaults) {
  ErrorModel em;
  EXPECT_DOUBLE_EQ(em.single_qubit_fidelity(), 0.999);
  EXPECT_DOUBLE_EQ(em.two_qubit_fidelity(), 0.99);
  EXPECT_DOUBLE_EQ(em.measurement_fidelity(), 0.997);
}

TEST(ErrorModel, BadFidelityIsContractViolation) {
  EXPECT_THROW(ErrorModel(0.0, 0.9, 0.9), AssertionError);
  EXPECT_THROW(ErrorModel(0.9, 1.5, 0.9), AssertionError);
}

TEST(ErrorModel, PerQubitOverride) {
  ErrorModel em;
  em.set_qubit_fidelity(3, 0.9);
  EXPECT_DOUBLE_EQ(em.qubit_fidelity(3), 0.9);
  EXPECT_DOUBLE_EQ(em.qubit_fidelity(0), 0.999);
}

TEST(ErrorModel, EdgeOverrideOrderInsensitive) {
  ErrorModel em;
  em.set_edge_fidelity(2, 5, 0.95);
  EXPECT_DOUBLE_EQ(em.edge_fidelity(5, 2), 0.95);
  EXPECT_DOUBLE_EQ(em.edge_fidelity(2, 5), 0.95);
  EXPECT_DOUBLE_EQ(em.edge_fidelity(0, 1), 0.99);
}

TEST(ErrorModel, GateFidelityByKind) {
  ErrorModel em;
  EXPECT_DOUBLE_EQ(em.gate_fidelity(circuit::make_gate(GateKind::kH, {0})),
                   0.999);
  EXPECT_DOUBLE_EQ(em.gate_fidelity(circuit::make_gate(GateKind::kCz, {0, 1})),
                   0.99);
  EXPECT_DOUBLE_EQ(
      em.gate_fidelity(circuit::make_gate(GateKind::kMeasure, {0})), 0.997);
  EXPECT_DOUBLE_EQ(
      em.gate_fidelity(circuit::make_gate(GateKind::kBarrier, {0})), 1.0);
}

TEST(ErrorModel, ThreeQubitGateFidelityIsContractViolation) {
  ErrorModel em;
  EXPECT_THROW(em.gate_fidelity(circuit::make_gate(GateKind::kCcx, {0, 1, 2})),
               AssertionError);
}

TEST(ErrorModel, Durations) {
  ErrorModel em;
  EXPECT_DOUBLE_EQ(em.gate_duration_ns(GateKind::kH), 20.0);
  EXPECT_DOUBLE_EQ(em.gate_duration_ns(GateKind::kCz), 40.0);
  EXPECT_DOUBLE_EQ(em.gate_duration_ns(GateKind::kMeasure), 600.0);
  EXPECT_DOUBLE_EQ(em.gate_duration_ns(GateKind::kBarrier), 0.0);
}

TEST(ErrorModel, RandomizeBoundsJitter) {
  ErrorModel em;
  qfs::Rng rng(5);
  std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}};
  em.randomize(3, edges, 0.05, rng);
  for (int q = 0; q < 3; ++q) {
    EXPECT_GE(em.qubit_fidelity(q), 0.999 * 0.95);
    EXPECT_LE(em.qubit_fidelity(q), 1.0);
  }
  EXPECT_NE(em.edge_fidelity(0, 1), em.edge_fidelity(1, 2));
}

// ---------------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------------

TEST(Topology, Surface7CanonicalEdges) {
  Topology t = surface7();
  EXPECT_EQ(t.num_qubits(), 7);
  EXPECT_EQ(t.coupling().num_edges(), 8);
  // Fig. 2 chip: Q3 is the degree-4 centre.
  EXPECT_EQ(t.coupling().degree(3), 4);
  EXPECT_TRUE(t.adjacent(0, 2));
  EXPECT_TRUE(t.adjacent(0, 3));
  EXPECT_TRUE(t.adjacent(4, 6));
  EXPECT_FALSE(t.adjacent(0, 1));
  EXPECT_FALSE(t.adjacent(2, 4));
}

TEST(Topology, Surface17Shape) {
  Topology t = surface17();
  EXPECT_EQ(t.num_qubits(), 17);
  EXPECT_EQ(t.coupling().num_edges(), 24);
  auto deg = graph::degree_stats(t.coupling());
  EXPECT_EQ(deg.max, 4);
  EXPECT_GE(deg.min, 2);
  EXPECT_TRUE(graph::is_connected(t.coupling()));
}

TEST(Topology, Surface97Shape) {
  Topology t = surface97();
  EXPECT_EQ(t.num_qubits(), 97);
  auto deg = graph::degree_stats(t.coupling());
  EXPECT_EQ(deg.max, 4);  // surface lattices are degree-4 bounded
  EXPECT_TRUE(graph::is_connected(t.coupling()));
}

TEST(Topology, SurfaceLatticeQubitCountFormula) {
  // narrow d-1 over 2d+1 rows gives 2d^2-1 qubits.
  for (int d = 2; d <= 8; ++d) {
    Topology t = surface_lattice(d - 1, 2 * d + 1);
    EXPECT_EQ(t.num_qubits(), 2 * d * d - 1) << "d=" << d;
    EXPECT_TRUE(graph::is_connected(t.coupling()));
  }
}

TEST(Topology, SurfaceLatticeRowValidation) {
  EXPECT_THROW(surface_lattice(2, 4), AssertionError);  // even row count
  EXPECT_THROW(surface_lattice(2, 1), AssertionError);  // too few rows
  EXPECT_THROW(surface_lattice(0, 3), AssertionError);
}

TEST(Topology, DistancePrecomputed) {
  Topology t = surface7();
  EXPECT_EQ(t.distance(0, 0), 0);
  EXPECT_EQ(t.distance(0, 2), 1);
  EXPECT_EQ(t.distance(0, 6), 2);
  // Q2 and Q4 sit on opposite ends of the middle row; every route detours
  // through both outer rows.
  EXPECT_EQ(t.distance(2, 4), 4);
}

TEST(Topology, ShortestPathValid) {
  Topology t = surface17();
  auto p = t.shortest_path(0, 16);
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 16);
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(t.adjacent(p[i], p[i + 1]));
  }
  EXPECT_EQ(static_cast<int>(p.size()) - 1, t.distance(0, 16));
}

TEST(Topology, SimpleGeometries) {
  EXPECT_EQ(line_topology(5).coupling().num_edges(), 4);
  EXPECT_EQ(ring_topology(5).coupling().num_edges(), 5);
  EXPECT_EQ(grid_topology(2, 3).coupling().num_edges(), 7);
  EXPECT_EQ(star_topology(5).coupling().num_edges(), 4);
  EXPECT_EQ(fully_connected_topology(5).coupling().num_edges(), 10);
}

TEST(Topology, HeavyHexLatticeProperties) {
  Topology t = heavy_hex_lattice(3, 9);
  // 3 rows of 9 plus bridges: rows 0-1 at c=0,4,8 (3), rows 1-2 at c=2,6 (2).
  EXPECT_EQ(t.num_qubits(), 27 + 5);
  EXPECT_TRUE(graph::is_connected(t.coupling()));
  auto deg = graph::degree_stats(t.coupling());
  EXPECT_LE(deg.max, 3);  // the heavy-hex property
}

TEST(Topology, HeavyHexLatticeBridgesAreDegreeTwo) {
  Topology t = heavy_hex_lattice(2, 5);
  // Bridge qubits are appended after the 2*5 row qubits.
  for (int q = 10; q < t.num_qubits(); ++q) {
    EXPECT_EQ(t.coupling().degree(q), 2);
  }
}

TEST(Topology, HeavyHexLatticeValidation) {
  EXPECT_THROW(heavy_hex_lattice(0, 5), AssertionError);
  EXPECT_THROW(heavy_hex_lattice(2, 4), AssertionError);   // cols % 4 != 1
  EXPECT_THROW(heavy_hex_lattice(2, 2), AssertionError);   // too narrow
}

TEST(Topology, HeavyHex27) {
  Topology t = heavy_hex27();
  EXPECT_EQ(t.num_qubits(), 27);
  EXPECT_EQ(t.coupling().num_edges(), 28);
  EXPECT_TRUE(graph::is_connected(t.coupling()));
  auto deg = graph::degree_stats(t.coupling());
  EXPECT_LE(deg.max, 3);  // heavy-hex property
}

TEST(Topology, EdgeListSortedUnique) {
  auto edges = surface7().edge_list();
  EXPECT_EQ(edges.size(), 8u);
  for (const auto& [a, b] : edges) EXPECT_LT(a, b);
}

// --- Topology::distance contract regressions (see topology.h) ---

TEST(Topology, DistanceOutOfRangeIsContractViolation) {
  Topology t = surface7();
  EXPECT_THROW(t.distance(-1, 0), AssertionError);
  EXPECT_THROW(t.distance(0, -1), AssertionError);
  EXPECT_THROW(t.distance(7, 0), AssertionError);
  EXPECT_THROW(t.distance(0, 7), AssertionError);
  EXPECT_THROW(t.reachable(-1, 0), AssertionError);
  EXPECT_THROW(t.distance_row(7), AssertionError);
}

TEST(Topology, DistanceDisconnectedPairThrowsReachableDoesNot) {
  // Two islands: 0-1 and 2-3.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  Topology t("two-islands", std::move(g));
  EXPECT_FALSE(t.connected());
  // Within an island the table still answers.
  EXPECT_EQ(t.distance(0, 1), 1);
  EXPECT_EQ(t.distance(2, 3), 1);
  // Across islands: distance() is a contract violation, reachable() is the
  // non-throwing query callers on degraded chips use instead.
  EXPECT_THROW(t.distance(0, 2), AssertionError);
  EXPECT_TRUE(t.reachable(0, 1));
  EXPECT_FALSE(t.reachable(0, 2));
}

TEST(Topology, FlatTableMatchesCheckedDistance) {
  Topology t = surface17();
  EXPECT_TRUE(t.connected());
  for (int a = 0; a < t.num_qubits(); ++a) {
    const int* row = t.distance_row(a);
    for (int b = 0; b < t.num_qubits(); ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance_unchecked(a, b));
      EXPECT_EQ(row[b], t.distance(a, b));
    }
  }
}

TEST(Topology, TablesSharedAcrossCopiesNotRecomputed) {
  Topology t = surface97();
  Topology copy = t;
  // Copies share the same table allocation (pointer equality): a Device
  // copied into a compile_resilient fallback attempt reuses the tables
  // instead of recomputing the all-pairs BFS.
  EXPECT_EQ(t.tables(), copy.tables());
  // The cached edge list is one buffer too, not a fresh vector per call.
  EXPECT_EQ(&t.edge_list(), &t.edge_list());
  EXPECT_EQ(&t.edge_list(), &copy.edge_list());
}

TEST(Topology, CsrNeighborsMatchCouplingGraph) {
  Topology t = surface17();
  const TopologyTables* tables = t.tables();
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->nbr_offsets.size(),
            static_cast<std::size_t>(t.num_qubits()) + 1);
  for (int q = 0; q < t.num_qubits(); ++q) {
    std::vector<int> expected;
    for (const auto& [v, w] : t.coupling().neighbors(q)) expected.push_back(v);
    std::vector<int> actual(
        tables->nbr.begin() + tables->nbr_offsets[static_cast<std::size_t>(q)],
        tables->nbr.begin() +
            tables->nbr_offsets[static_cast<std::size_t>(q) + 1]);
    EXPECT_EQ(actual, expected);
    EXPECT_TRUE(std::is_sorted(actual.begin(), actual.end()));
  }
  // The SoA edge mirror matches the pair list the fingerprint hashes.
  ASSERT_EQ(tables->edge_a.size(), tables->edges.size());
  for (std::size_t i = 0; i < tables->edges.size(); ++i) {
    EXPECT_EQ(tables->edge_a[i], tables->edges[i].first);
    EXPECT_EQ(tables->edge_b[i], tables->edges[i].second);
  }
}

// ---------------------------------------------------------------------------
// Devices
// ---------------------------------------------------------------------------

TEST(Device, Surface17Bundle) {
  Device d = surface17_device();
  EXPECT_EQ(d.num_qubits(), 17);
  EXPECT_EQ(d.gateset().name(), "surface-code");
  EXPECT_TRUE(d.has_control_groups());
  // Row-cyclic groups: first row (2 qubits) group 0, second row group 1.
  EXPECT_EQ(d.control_group(0), 0);
  EXPECT_EQ(d.control_group(1), 0);
  EXPECT_EQ(d.control_group(2), 1);
}

TEST(Device, ControlGroupQueriesValidated) {
  Device d = heavy_hex27_device();
  EXPECT_FALSE(d.has_control_groups());
  EXPECT_THROW(d.control_group(0), AssertionError);
}

TEST(Device, ControlGroupSizeValidated) {
  Device d = heavy_hex27_device();
  EXPECT_THROW(d.set_control_groups({0, 1}), AssertionError);
}

TEST(Device, FactoryTopologies) {
  EXPECT_EQ(surface7_device().num_qubits(), 7);
  EXPECT_EQ(surface97_device().num_qubits(), 97);
  EXPECT_EQ(line_device(9).num_qubits(), 9);
  EXPECT_EQ(grid_device(4, 5).num_qubits(), 20);
  EXPECT_EQ(fully_connected_device(6).num_qubits(), 6);
}

// ---------------------------------------------------------------------------
// Calibration files
// ---------------------------------------------------------------------------

TEST(Calibration, ParseDefaultsAndOverrides) {
  auto result = parse_calibration(
      "# comment\n"
      "defaults,0.9995,0.992,0.98\n"
      "durations_ns,25,45,500\n"
      "qubit,3,0.95\n"
      "edge,0,2,0.9\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const ErrorModel& em = result.value();
  EXPECT_DOUBLE_EQ(em.single_qubit_fidelity(), 0.9995);
  EXPECT_DOUBLE_EQ(em.two_qubit_fidelity(), 0.992);
  EXPECT_DOUBLE_EQ(em.measurement_fidelity(), 0.98);
  EXPECT_DOUBLE_EQ(em.qubit_fidelity(3), 0.95);
  EXPECT_DOUBLE_EQ(em.qubit_fidelity(0), 0.9995);
  EXPECT_DOUBLE_EQ(em.edge_fidelity(2, 0), 0.9);
  EXPECT_DOUBLE_EQ(em.single_qubit_duration_ns(), 25);
}

TEST(Calibration, EmptyTextGivesDefaults) {
  auto result = parse_calibration("");
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(result.value().single_qubit_fidelity(), 0.999);
}

TEST(Calibration, Errors) {
  EXPECT_FALSE(parse_calibration("bogus,1,2\n").is_ok());
  EXPECT_FALSE(parse_calibration("qubit,notanumber,0.9\n").is_ok());
  EXPECT_FALSE(parse_calibration("qubit,1,1.5\n").is_ok());
  EXPECT_FALSE(parse_calibration("edge,1,1,0.9\n").is_ok());
  EXPECT_FALSE(parse_calibration("defaults,0.9\n").is_ok());
  // Error message names the line.
  auto bad = parse_calibration("defaults,0.99,0.99,0.99\nwrong,1\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(Calibration, RejectsNonFiniteFidelities) {
  // parse_double accepts "nan"/"inf" spellings; the validator must not.
  for (const char* v : {"nan", "inf", "-inf", "NaN"}) {
    auto r = parse_calibration(std::string("defaults,") + v + ",0.99,0.99\n");
    ASSERT_FALSE(r.is_ok()) << v;
    EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
  }
  EXPECT_FALSE(parse_calibration("qubit,0,inf\n").is_ok());
  EXPECT_FALSE(parse_calibration("edge,0,1,nan\n").is_ok());
}

TEST(Calibration, RejectsOutOfUnitIntervalFidelities) {
  EXPECT_FALSE(parse_calibration("qubit,0,0\n").is_ok());
  EXPECT_FALSE(parse_calibration("qubit,0,-0.5\n").is_ok());
  EXPECT_FALSE(parse_calibration("qubit,0,1.0001\n").is_ok());
  EXPECT_TRUE(parse_calibration("qubit,0,1.0\n").is_ok());
}

TEST(Calibration, RejectsBadDurations) {
  for (const char* row : {"durations_ns,0,40,600", "durations_ns,-20,40,600",
                          "durations_ns,nan,40,600", "durations_ns,20,inf,600"}) {
    auto r = parse_calibration(std::string(row) + "\n");
    ASSERT_FALSE(r.is_ok()) << row;
    EXPECT_NE(r.status().message().find("line 1"), std::string::npos) << row;
  }
}

TEST(Calibration, RejectsDuplicateRecords) {
  auto dup_qubit = parse_calibration("qubit,2,0.9\nqubit,2,0.8\n");
  ASSERT_FALSE(dup_qubit.is_ok());
  EXPECT_NE(dup_qubit.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(dup_qubit.status().message().find("duplicate"), std::string::npos);
  // Edges are order-insensitive: 1,0 duplicates 0,1.
  auto dup_edge = parse_calibration("edge,0,1,0.9\nedge,1,0,0.8\n");
  ASSERT_FALSE(dup_edge.is_ok());
  EXPECT_NE(dup_edge.status().message().find("line 2"), std::string::npos);
}

TEST(Calibration, RejectsOutOfRangeIdsWhenChipSizeKnown) {
  auto q = parse_calibration("qubit,5,0.9\n", /*num_qubits=*/5);
  ASSERT_FALSE(q.is_ok());
  EXPECT_NE(q.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(q.status().message().find("out of range"), std::string::npos);
  auto e = parse_calibration("edge,0,7,0.9\n", /*num_qubits=*/5);
  ASSERT_FALSE(e.is_ok());
  EXPECT_NE(e.status().message().find("out of range"), std::string::npos);
  // Without a chip size the same rows parse (back-compat path).
  EXPECT_TRUE(parse_calibration("qubit,5,0.9\n").is_ok());
}

TEST(TopologyFileErrors, EveryRejectionCarriesALineNumber) {
  const char* cases[] = {
      "name\n",                         // name needs one value
      "qubits,0\n",                     // bad qubit count
      "qubits,2\nedge,0,2\n",           // endpoint out of range
      "edge,0,1\n",                     // edge before qubits record
      "qubits,2\nedge,0,0\n",           // self-loop
      "qubits,2\nwormhole,0,1\n",       // unknown record
  };
  for (const char* text : cases) {
    auto r = parse_topology(text);
    ASSERT_FALSE(r.is_ok()) << text;
    EXPECT_NE(r.status().message().find("line "), std::string::npos) << text;
  }
}

TEST(Calibration, RoundTrip) {
  ErrorModel em(0.998, 0.97, 0.96);
  em.set_durations_ns(30, 50, 400);
  em.set_qubit_fidelity(1, 0.91);
  em.set_edge_fidelity(0, 1, 0.88);
  std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}};
  std::string text = calibration_to_text(em, 3, edges);
  auto back = parse_calibration(text);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_DOUBLE_EQ(back.value().qubit_fidelity(1), 0.91);
  EXPECT_DOUBLE_EQ(back.value().edge_fidelity(0, 1), 0.88);
  EXPECT_DOUBLE_EQ(back.value().edge_fidelity(1, 2), 0.97);
  EXPECT_DOUBLE_EQ(back.value().two_qubit_duration_ns(), 50);
}

// ---------------------------------------------------------------------------
// Topology synthesis
// ---------------------------------------------------------------------------

TEST(Synthesis, HeaviestInteractionsBecomeCouplers) {
  graph::Graph ig(4);
  ig.add_edge(0, 1, 100.0);
  ig.add_edge(2, 3, 50.0);
  ig.add_edge(0, 2, 1.0);
  Topology t = synthesize_topology(ig);
  EXPECT_TRUE(t.adjacent(0, 1));
  EXPECT_TRUE(t.adjacent(2, 3));
  EXPECT_TRUE(graph::is_connected(t.coupling()));
}

TEST(Synthesis, RespectsDegreeBudget) {
  // A star interaction: centre wants degree 7 but the budget is 3.
  graph::Graph ig = graph::star_graph(8);
  SynthesisOptions opts;
  opts.max_degree = 3;
  Topology t = synthesize_topology(ig, opts);
  auto deg = graph::degree_stats(t.coupling());
  EXPECT_LE(deg.max, 3);
  EXPECT_TRUE(graph::is_connected(t.coupling()));
}

TEST(Synthesis, IsolatedQubitsGetStitched) {
  graph::Graph ig(5);
  ig.add_edge(0, 1, 2.0);  // qubits 2..4 never interact
  Topology t = synthesize_topology(ig);
  EXPECT_TRUE(graph::is_connected(t.coupling()));
  EXPECT_EQ(t.num_qubits(), 5);
}

TEST(Synthesis, PerfectEmbeddingForLowDegreeGraphs) {
  // A ring interaction fits entirely within degree 4: the synthesized chip
  // realises every interaction directly (zero routing needed).
  graph::Graph ring = graph::cycle_graph(10);
  Topology t = synthesize_topology(ring);
  for (const auto& e : ring.edges()) {
    EXPECT_TRUE(t.adjacent(e.u, e.v));
  }
}

TEST(Synthesis, Validation) {
  graph::Graph ig(2);
  SynthesisOptions opts;
  opts.max_degree = 1;
  EXPECT_THROW(synthesize_topology(ig, opts), AssertionError);
  EXPECT_THROW(synthesize_topology(graph::Graph(0)), AssertionError);
}

TEST(Synthesis, SynthesizedChipBeatsGenericForItsWorkload) {
  // The end-to-end claim: a chip synthesised from a QAOA instance's
  // interaction graph maps that instance with (near-)zero overhead.
  qfs::Rng rng(5);
  graph::Graph problem = graph::cycle_graph(12);
  circuit::Circuit qaoa = qfs::workloads::qaoa_maxcut(problem, 2, rng);
  graph::Graph ig = qfs::profile::interaction_graph(qaoa);
  Topology topo = synthesize_topology(ig);
  Device chip("synth", std::move(topo), surface_code_gateset(), ErrorModel());
  qfs::Rng map_rng(6);
  auto r = qfs::mapper::map_circuit(qaoa, chip, map_rng);
  EXPECT_EQ(r.swaps_inserted, 0);
  EXPECT_DOUBLE_EQ(r.gate_overhead_pct, 0.0);
}

// ---------------------------------------------------------------------------
// Topology files
// ---------------------------------------------------------------------------

TEST(TopologyFile, ParseBasic) {
  auto result = parse_topology(
      "# my chip\n"
      "name,demo-chip\n"
      "qubits,4\n"
      "edge,0,1\n"
      "edge,1,2\n"
      "edge,2,3\n");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Topology& t = result.value();
  EXPECT_EQ(t.name(), "demo-chip");
  EXPECT_EQ(t.num_qubits(), 4);
  EXPECT_TRUE(t.adjacent(1, 2));
  EXPECT_EQ(t.distance(0, 3), 3);
}

TEST(TopologyFile, DefaultsNameAndDedupesEdges) {
  auto result = parse_topology("qubits,2\nedge,0,1\nedge,1,0\n");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().name(), "custom");
  EXPECT_EQ(result.value().coupling().num_edges(), 1);
}

TEST(TopologyFile, Errors) {
  EXPECT_FALSE(parse_topology("").is_ok());                      // no qubits
  EXPECT_FALSE(parse_topology("qubits,0\n").is_ok());            // bad count
  EXPECT_FALSE(parse_topology("qubits,3\nedge,0,5\n").is_ok());  // out of range
  EXPECT_FALSE(parse_topology("qubits,3\nedge,1,1\n").is_ok());  // self loop
  EXPECT_FALSE(parse_topology("qubits,3\nedge,0,1\n").is_ok());  // disconnected
  EXPECT_FALSE(parse_topology("qubits,2\nwat,1\n").is_ok());     // unknown kind
}

TEST(TopologyFile, RoundTrip) {
  Topology original = surface7();
  auto back = parse_topology(topology_to_text(original));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().name(), original.name());
  EXPECT_EQ(back.value().num_qubits(), original.num_qubits());
  EXPECT_EQ(back.value().edge_list(), original.edge_list());
}

// ---------------------------------------------------------------------------
// Fidelity estimation
// ---------------------------------------------------------------------------

TEST(Fidelity, ProductOverGates) {
  Device d = surface7_device();
  Circuit c(3);
  c.rx(0.5, 0).cz(0, 2).ry(0.2, 1);
  // 2 single-qubit + 1 two-qubit.
  double expected = 0.999 * 0.999 * 0.99;
  EXPECT_NEAR(estimate_gate_fidelity(c, d), expected, 1e-12);
}

TEST(Fidelity, MeasurementsExcludedFromGateFidelity) {
  Device d = surface7_device();
  Circuit c(1);
  c.rx(0.5, 0).measure(0);
  EXPECT_NEAR(estimate_gate_fidelity(c, d), 0.999, 1e-12);
  EXPECT_NEAR(estimate_total_fidelity(c, d), 0.999 * 0.997, 1e-12);
}

TEST(Fidelity, EmptyCircuitIsPerfect) {
  Device d = surface7_device();
  EXPECT_DOUBLE_EQ(estimate_gate_fidelity(Circuit(3), d), 1.0);
}

TEST(Fidelity, LogFidelityMatchesLogOfProduct) {
  Device d = surface17_device();
  Circuit c(4);
  for (int i = 0; i < 10; ++i) c.cz(i % 3, (i % 3) + 1);
  EXPECT_NEAR(estimate_log_gate_fidelity(c, d),
              std::log(estimate_gate_fidelity(c, d)), 1e-9);
}

TEST(Fidelity, LogFidelitySafeForHugeCircuits) {
  Device d = surface97_device();
  Circuit c(2);
  for (int i = 0; i < 100000; ++i) c.cz(0, 1);
  double log_f = estimate_log_gate_fidelity(c, d);
  EXPECT_NEAR(log_f, 100000 * std::log(0.99), 1e-6);
  EXPECT_DOUBLE_EQ(estimate_gate_fidelity(c, d), 0.0);  // underflow to 0 is fine
}

TEST(Fidelity, MoreGatesLowerFidelity) {
  // The Fig. 3a monotonic relation.
  Device d = surface17_device();
  double prev = 1.0;
  Circuit c(3);
  for (int i = 0; i < 50; ++i) {
    c.cz(0, 1);
    double f = estimate_gate_fidelity(c, d);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(Fidelity, PerEdgeOverridesAffectEstimate) {
  Device d = surface7_device();
  Circuit c(4);
  c.cz(0, 2);
  double base = estimate_gate_fidelity(c, d);
  d.mutable_error_model().set_edge_fidelity(0, 2, 0.5);
  EXPECT_NEAR(estimate_gate_fidelity(c, d), base * 0.5 / 0.99, 1e-12);
}

}  // namespace
}  // namespace qfs::device
