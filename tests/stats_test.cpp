#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/kmeans.h"
#include "stats/regression.h"
#include "support/rng.h"

namespace qfs::stats {
namespace {

// ---------------------------------------------------------------------------
// Descriptive
// ---------------------------------------------------------------------------

TEST(Descriptive, MeanAndVariance) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Descriptive, EmptyInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Descriptive, MinMax) {
  std::vector<double> xs = {3, -1, 7};
  EXPECT_DOUBLE_EQ(min_value(xs), -1);
  EXPECT_DOUBLE_EQ(max_value(xs), 7);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, QuantileInterpolates) {
  std::vector<double> xs = {0, 10, 20, 30};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 15.0);
}

TEST(Descriptive, PercentileNearestRankSemantics) {
  // Nearest rank: 1-based rank ceil(p * N), so every result is an actual
  // sample. Pinned here because qfsd_loadgen and bench_compile_hotpath
  // report p50/p99 through this exact definition.
  std::vector<double> xs = {30, 0, 20, 10};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.0), 0.0);    // min
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 1.0), 30.0);   // max
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.5), 10.0);   // rank 2 of 4
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.51), 20.0);  // rank 3 of 4
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.25), 0.0);   // rank 1 of 4
}

TEST(Descriptive, PercentileNearestRankSmallSamples) {
  // The regression this replaces: round-half-up indexing of p*(N-1) made
  // p=0.99 select the maximum for every N < 50 and was unguarded on empty
  // input. p=0.99 over 10 samples is rank ceil(9.9) = 10 -> the maximum
  // (correct for nearest-rank); over 200 samples it is rank 198, NOT the
  // maximum.
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({}, 0.99), 0.0);  // empty-safe
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({7.0}, 0.99), 7.0);
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(i);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(ten, 0.99), 10.0);
  std::vector<double> two_hundred;
  for (int i = 1; i <= 200; ++i) two_hundred.push_back(i);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(two_hundred, 0.99), 198.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(two_hundred, 0.5), 100.0);
  // A p epsilon above zero must clamp to rank 1, never index below it.
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(ten, 1e-12), 1.0);
}

TEST(Descriptive, StandardizeZeroMeanUnitVar) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  auto z = standardize(xs);
  EXPECT_NEAR(mean(z), 0.0, 1e-12);
  EXPECT_NEAR(stddev(z), 1.0, 1e-12);
}

TEST(Descriptive, StandardizeConstantIsZeros) {
  auto z = standardize({3, 3, 3});
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Bootstrap, CoversTrueMeanOfNormalSample) {
  qfs::Rng rng(41);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.normal(10.0, 2.0));
  qfs::Rng boot(42);
  auto ci = bootstrap_mean_ci(xs, boot);
  EXPECT_LT(ci.lower, 10.0);
  EXPECT_GT(ci.upper, 10.0);
  EXPECT_NEAR(ci.point, 10.0, 0.3);
  // Width ~ 2*1.96*sigma/sqrt(n) ~= 0.39.
  EXPECT_NEAR(ci.upper - ci.lower, 0.39, 0.12);
}

TEST(Bootstrap, DegenerateSamples) {
  qfs::Rng rng(43);
  auto empty = bootstrap_mean_ci({}, rng);
  EXPECT_DOUBLE_EQ(empty.point, 0.0);
  auto constant = bootstrap_mean_ci({5, 5, 5, 5}, rng);
  EXPECT_DOUBLE_EQ(constant.lower, 5.0);
  EXPECT_DOUBLE_EQ(constant.upper, 5.0);
}

TEST(Bootstrap, NarrowerForLargerSamples) {
  qfs::Rng gen(44);
  std::vector<double> small_sample, large_sample;
  for (int i = 0; i < 30; ++i) small_sample.push_back(gen.normal(0, 1));
  for (int i = 0; i < 3000; ++i) large_sample.push_back(gen.normal(0, 1));
  qfs::Rng b1(45), b2(45);
  auto ci_small = bootstrap_mean_ci(small_sample, b1, 500);
  auto ci_large = bootstrap_mean_ci(large_sample, b2, 500);
  EXPECT_LT(ci_large.upper - ci_large.lower, ci_small.upper - ci_small.lower);
}

TEST(Bootstrap, Validation) {
  qfs::Rng rng(46);
  std::vector<double> xs = {1, 2};
  EXPECT_THROW(bootstrap_mean_ci(xs, rng, 0), AssertionError);
  EXPECT_THROW(bootstrap_mean_ci(xs, rng, 100, 1.5), AssertionError);
}

// ---------------------------------------------------------------------------
// Correlation
// ---------------------------------------------------------------------------

TEST(Pearson, PerfectPositive) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {10, 20, 30, 40};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, SizeMismatchGivesZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 2}, {1, 2, 3}), 0.0);
}

TEST(Pearson, IndependentSeriesNearZero) {
  qfs::Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.normal(0, 1));
    y.push_back(rng.normal(0, 1));
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.05);
}

TEST(Spearman, MonotonicNonlinearIsOne) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // x^3: nonlinear, monotonic
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, HandlesTies) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {1, 2, 2, 3};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(CorrelationMatrix, DiagonalOnesSymmetric) {
  std::vector<Feature> f = {{"a", {1, 2, 3, 4}},
                            {"b", {2, 4, 6, 8}},
                            {"c", {4, 3, 2, 1}}};
  auto m = correlation_matrix(f);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m[i][i], 1.0);
  EXPECT_NEAR(m[0][1], 1.0, 1e-12);
  EXPECT_NEAR(m[0][2], -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(m[1][2], m[2][1]);
}

TEST(ReduceFeatures, DropsPerfectlyCorrelated) {
  std::vector<Feature> f = {
      {"a", {1, 2, 3, 4}},
      {"a_scaled", {10, 20, 30, 40}},  // redundant with a
      {"b", {1, -1, 1, -1}},           // independent
  };
  auto r = reduce_features(f, 0.85);
  ASSERT_EQ(r.kept.size(), 2u);
  EXPECT_EQ(r.kept[0], 0);
  EXPECT_EQ(r.kept[1], 2);
  ASSERT_EQ(r.dropped.size(), 1u);
  EXPECT_EQ(r.dropped[0], 1);
  EXPECT_EQ(r.redundant_with[0], 0);
}

TEST(ReduceFeatures, KeepsAllWhenIndependent) {
  qfs::Rng rng(9);
  std::vector<Feature> f(4);
  for (int c = 0; c < 4; ++c) {
    f[static_cast<std::size_t>(c)].name = "f" + std::to_string(c);
    for (int i = 0; i < 500; ++i) {
      f[static_cast<std::size_t>(c)].values.push_back(rng.normal(0, 1));
    }
  }
  auto r = reduce_features(f, 0.85);
  EXPECT_EQ(r.kept.size(), 4u);
  EXPECT_TRUE(r.dropped.empty());
}

TEST(ReduceFeatures, PriorityOrderWins) {
  // Both columns correlated: the earlier one must be kept.
  std::vector<Feature> f = {{"first", {1, 2, 3}}, {"second", {2, 4, 6}}};
  auto r = reduce_features(f, 0.5);
  ASSERT_EQ(r.kept.size(), 1u);
  EXPECT_EQ(r.kept[0], 0);
}

// ---------------------------------------------------------------------------
// KMeans
// ---------------------------------------------------------------------------

TEST(KMeans, SeparatesObviousClusters) {
  qfs::Rng rng(21);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 30; ++i) {
    samples.push_back({rng.normal(0, 0.1), rng.normal(0, 0.1)});
  }
  for (int i = 0; i < 30; ++i) {
    samples.push_back({rng.normal(10, 0.1), rng.normal(10, 0.1)});
  }
  auto result = kmeans(samples, 2, rng);
  // All of the first 30 share a label; all of the last 30 share the other.
  for (int i = 1; i < 30; ++i) EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)], result.assignment[0]);
  for (int i = 31; i < 60; ++i) EXPECT_EQ(result.assignment[static_cast<std::size_t>(i)], result.assignment[30]);
  EXPECT_NE(result.assignment[0], result.assignment[30]);
  EXPECT_LT(result.inertia, 5.0);
}

TEST(KMeans, KEqualsOneGroupsEverything) {
  qfs::Rng rng(23);
  std::vector<std::vector<double>> samples = {{0, 0}, {1, 1}, {2, 2}};
  auto result = kmeans(samples, 1, rng);
  for (int a : result.assignment) EXPECT_EQ(a, 0);
  EXPECT_NEAR(result.centroids[0][0], 1.0, 1e-12);
}

TEST(KMeans, KEqualsNZeroInertia) {
  qfs::Rng rng(25);
  std::vector<std::vector<double>> samples = {{0, 0}, {5, 0}, {0, 5}};
  auto result = kmeans(samples, 3, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, InvalidKIsContractViolation) {
  qfs::Rng rng(27);
  std::vector<std::vector<double>> samples = {{0.0}, {1.0}};
  EXPECT_THROW(kmeans(samples, 0, rng), AssertionError);
  EXPECT_THROW(kmeans(samples, 3, rng), AssertionError);
}

TEST(KMeans, RaggedSamplesAreContractViolation) {
  qfs::Rng rng(29);
  std::vector<std::vector<double>> samples = {{0.0, 1.0}, {1.0}};
  EXPECT_THROW(kmeans(samples, 1, rng), AssertionError);
}

TEST(KMeans, SquaredDistance) {
  EXPECT_DOUBLE_EQ(squared_distance({0, 0}, {3, 4}), 25.0);
}

// ---------------------------------------------------------------------------
// Regression
// ---------------------------------------------------------------------------

TEST(Regression, ExactLine) {
  auto fit = linear_fit({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Regression, NoisyLineReasonable) {
  qfs::Rng rng(31);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    double x = rng.uniform_real(0, 10);
    xs.push_back(x);
    ys.push_back(3.0 * x - 2.0 + rng.normal(0, 0.5));
  }
  auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.1);
  EXPECT_NEAR(fit.intercept, -2.0, 0.3);
  EXPECT_GT(fit.r2, 0.95);
}

TEST(Regression, DegenerateInputsGiveZeroFit) {
  auto fit = linear_fit({1.0}, {2.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  auto fit2 = linear_fit({2, 2, 2}, {1, 2, 3});  // zero x variance
  EXPECT_DOUBLE_EQ(fit2.slope, 0.0);
}

TEST(Regression, ExponentialFitRecoversDecay) {
  // y = 5 * exp(-0.01 x): the Fig. 3a fidelity-decay shape.
  std::vector<double> xs, ys;
  for (int x = 0; x < 400; x += 10) {
    xs.push_back(x);
    ys.push_back(5.0 * std::exp(-0.01 * x));
  }
  auto fit = exponential_fit(xs, ys);
  EXPECT_NEAR(fit.slope, -0.01, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 5.0, 1e-6);
}

TEST(Regression, ExponentialFitSkipsNonPositive) {
  auto fit = exponential_fit({1, 2, 3, 4}, {0.0, std::exp(2.0), std::exp(3.0),
                                            std::exp(4.0)});
  EXPECT_NEAR(fit.slope, 1.0, 1e-9);
}

}  // namespace
}  // namespace qfs::stats
