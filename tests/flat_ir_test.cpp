// Flat IR (circuit/flat.h) contract tests, plus the suite-wide equivalence
// pin: the flat-IR router/scheduler hot paths must produce byte-identical
// compiler output to the legacy pointer-chasing IR, across the paper's full
// 200-circuit suite and at --jobs 1 and 8 (ISSUE satellite S4; the
// process-level QFS_IR determinism ctest covers the same contract
// end-to-end through a bench binary).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/artifact.h"
#include "circuit/flat.h"
#include "common.h"
#include "compiler/decompose.h"
#include "device/device.h"
#include "mapper/routing.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

namespace qfs::circuit {
namespace {

/// RAII mode switch so a failing assertion cannot leak kLegacy into the
/// rest of the test binary.
class ScopedIrMode {
 public:
  explicit ScopedIrMode(IrMode mode) { set_ir_mode_for_testing(mode); }
  ~ScopedIrMode() { set_ir_mode_for_testing(IrMode::kFlat); }
};

TEST(FlatIr, OpMirrorsGateKindExhaustively) {
  ASSERT_EQ(kNumOps, kNumGateKinds);
  for (int k = 0; k < kNumGateKinds; ++k) {
    const GateKind kind = static_cast<GateKind>(k);
    EXPECT_EQ(static_cast<int>(to_op(kind)), k);
    EXPECT_EQ(to_gate_kind(to_op(kind)), kind);
  }
  // One byte per op, as the inner loops assume.
  static_assert(sizeof(Op) == 1);
}

TEST(FlatIr, RoundTripPreservesEveryGateExactly) {
  Circuit c(6, "roundtrip");
  c.h(0).cx(0, 1).rz(0.1234567890123456789, 2).u3(0.1, -2.5, 3e-17, 3);
  c.ccx(0, 1, 2).swap(4, 5).measure(3).reset(4);
  c.barrier({0, 1, 2, 3, 4});  // variable arity > 3: exercises the overflow pool
  c.cp(-0.75, 2, 5);

  FlatCircuit flat = flatten(c);
  ASSERT_EQ(flat.size(), c.size());
  EXPECT_EQ(unflatten(flat, "roundtrip"), c);

  // The barrier spilled; fixed-arity gates stayed inline.
  int spilled = 0;
  for (const Instr& ins : flat.instrs) spilled += ins.spilled() ? 1 : 0;
  EXPECT_EQ(spilled, 1);
}

TEST(FlatIr, RoundTripRandomCircuits) {
  qfs::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 12;
    spec.num_gates = 400;
    spec.two_qubit_fraction = 0.4;
    Circuit c = workloads::random_circuit(spec, rng);
    EXPECT_EQ(unflatten(flatten(c), c.name()), c);
  }
}

TEST(FlatIr, QubitsOfReportsInlineAndSpilledOperands) {
  Circuit c(5, "ops");
  c.cx(3, 1);
  c.barrier({0, 1, 2, 3, 4});
  FlatCircuit flat = flatten(c);
  int count = 0;
  const std::int32_t* q = flat.qubits_of(0, &count);
  ASSERT_EQ(count, 2);
  EXPECT_EQ(q[0], 3);
  EXPECT_EQ(q[1], 1);
  q = flat.qubits_of(1, &count);
  ASSERT_EQ(count, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q[i], i);
}

TEST(FlatIr, DefaultModeIsFlat) {
  // The tests run without QFS_IR set; the hot path is the default.
  EXPECT_EQ(ir_mode(), IrMode::kFlat);
}

/// Routed output of one router over one circuit under the current mode.
std::string route_text(const mapper::Router& router, const Circuit& c,
                       const device::Device& dev) {
  qfs::Rng rng(1);
  auto result =
      router.route(c, dev, mapper::Layout::identity(dev.num_qubits()), rng);
  return result.mapped.to_string() + "\nswaps=" +
         std::to_string(result.swaps_inserted);
}

TEST(FlatIr, LookaheadRouterFlatMatchesLegacyPerCircuit) {
  device::Device dev = device::surface17_device();
  mapper::LookaheadRouter router;
  std::vector<Circuit> circuits;
  circuits.push_back(workloads::ghz(17));
  circuits.push_back(workloads::qft(10, true));
  {
    qfs::Rng rng(5);
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 17;
    spec.num_gates = 600;
    spec.two_qubit_fraction = 0.45;
    circuits.push_back(workloads::random_circuit(spec, rng));
  }
  for (const Circuit& raw : circuits) {
    Circuit c = compiler::decompose_to_gateset(raw, dev.gateset());
    std::string flat_text, legacy_text;
    {
      ScopedIrMode mode(IrMode::kFlat);
      flat_text = route_text(router, c, dev);
    }
    {
      ScopedIrMode mode(IrMode::kLegacy);
      legacy_text = route_text(router, c, dev);
    }
    EXPECT_EQ(flat_text, legacy_text) << "circuit " << raw.name();
  }
}

/// The paper's full 200-circuit suite compiled with the lookahead-heavy
/// configuration under one mode; returns the canonical CSV plus every
/// serialized MappingResult, so equality means bit-exact artifacts (cache
/// payloads included), not just equal summary metrics.
std::string suite_fingerprint(IrMode mode, int jobs) {
  ScopedIrMode scoped(mode);
  device::Device dev = device::surface17_device();
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.suite.max_qubits = 17;
  config.suite.max_gates = 800;
  config.mapping.placer = "degree-match";
  config.mapping.router = "lookahead";
  config.mapping.sabre_refinement_rounds = 1;
  auto rows = bench::run_suite(dev, config);
  std::string out = bench::suite_rows_to_csv(rows);
  for (const auto& row : rows) {
    out += cache::serialize_mapping_result(row.mapping);
  }
  return out;
}

TEST(FlatIr, SuiteWideEquivalenceFlatVsLegacyAtJobs1And8) {
  const std::string flat1 = suite_fingerprint(IrMode::kFlat, 1);
  const std::string legacy1 = suite_fingerprint(IrMode::kLegacy, 1);
  EXPECT_EQ(flat1, legacy1);
  const std::string flat8 = suite_fingerprint(IrMode::kFlat, 8);
  EXPECT_EQ(flat1, flat8);
  const std::string legacy8 = suite_fingerprint(IrMode::kLegacy, 8);
  EXPECT_EQ(legacy1, legacy8);
}

}  // namespace
}  // namespace qfs::circuit
