#include <gtest/gtest.h>

#include <cmath>

#include "device/device.h"
#include "sim/density_matrix.h"
#include "sim/noisy.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

namespace qfs::sim {
namespace {

using circuit::Circuit;
using device::ErrorModel;

TEST(Noisy, PerfectModelGivesPerfectFidelity) {
  ErrorModel perfect(1.0, 1.0, 1.0);
  Circuit c = workloads::ghz(4);
  qfs::Rng rng(1);
  NoisyRunResult r = run_noisy(c, perfect, rng, {.shots = 20});
  EXPECT_DOUBLE_EQ(r.mean_state_fidelity, 1.0);
  EXPECT_DOUBLE_EQ(r.error_free_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_errors_per_shot, 0.0);
}

TEST(Noisy, ErrorFreeFractionTracksAnalyticProduct) {
  // The expectation of the error-free fraction IS the analytic product of
  // gate fidelities — the paper's Fig. 3 metric.
  ErrorModel em(0.99, 0.95, 1.0);
  Circuit c(3);
  for (int i = 0; i < 10; ++i) c.cz(i % 2, 2);
  for (int i = 0; i < 20; ++i) c.rx(0.1, i % 3);
  double analytic = std::pow(0.95, 10) * std::pow(0.99, 20);
  qfs::Rng rng(2);
  NoisyRunResult r = run_noisy(c, em, rng, {.shots = 4000});
  EXPECT_NEAR(r.error_free_fraction, analytic, 0.03);
}

TEST(Noisy, StateFidelityAtLeastErrorFreeFraction) {
  // Some injected errors still land close to the ideal state (e.g. Z on a
  // computational state), so mean state fidelity >= error-free fraction.
  ErrorModel em(0.97, 0.90, 1.0);
  Circuit c = workloads::ghz(5);
  qfs::Rng rng(3);
  NoisyRunResult r = run_noisy(c, em, rng, {.shots = 500});
  EXPECT_GE(r.mean_state_fidelity, r.error_free_fraction - 0.02);
  EXPECT_LT(r.mean_state_fidelity, 1.0);
}

TEST(Noisy, MoreGatesMoreErrors) {
  ErrorModel em(0.995, 0.97, 1.0);
  qfs::Rng gen(4);
  workloads::RandomCircuitSpec small_spec{4, 20, 0.4};
  workloads::RandomCircuitSpec big_spec{4, 200, 0.4};
  Circuit small = workloads::random_circuit(small_spec, gen);
  Circuit big = workloads::random_circuit(big_spec, gen);
  qfs::Rng r1(5), r2(5);
  NoisyRunResult rs = run_noisy(small, em, r1, {.shots = 300});
  NoisyRunResult rb = run_noisy(big, em, r2, {.shots = 300});
  EXPECT_LT(rb.mean_state_fidelity, rs.mean_state_fidelity);
  EXPECT_GT(rb.mean_errors_per_shot, rs.mean_errors_per_shot);
}

TEST(Noisy, PerEdgeOverridesAreHonoured) {
  ErrorModel em(1.0, 1.0, 1.0);
  em.set_edge_fidelity(0, 1, 0.5);  // only this edge is noisy
  Circuit c(3);
  for (int i = 0; i < 8; ++i) c.cz(0, 1);
  for (int i = 0; i < 8; ++i) c.cz(1, 2);
  qfs::Rng rng(6);
  NoisyRunResult r = run_noisy(c, em, rng, {.shots = 1500});
  EXPECT_NEAR(r.error_free_fraction, std::pow(0.5, 8), 0.01);
}

TEST(Noisy, MeasurementErrorsCountedWhenEnabled) {
  ErrorModel em(1.0, 1.0, 0.5);
  Circuit c(1);
  c.measure(0);
  qfs::Rng rng(7);
  NoisyRunResult off = run_noisy(c, em, rng, {.shots = 400});
  EXPECT_DOUBLE_EQ(off.error_free_fraction, 1.0);
  qfs::Rng rng2(7);
  NoisyRunResult on = run_noisy(
      c, em, rng2, {.shots = 400, .include_measurement_errors = true});
  EXPECT_NEAR(on.error_free_fraction, 0.5, 0.08);
  // Measurement errors never perturb the tracked pure state.
  EXPECT_DOUBLE_EQ(on.mean_state_fidelity, 1.0);
}

TEST(Noisy, ContractChecks) {
  ErrorModel em;
  Circuit wide(17);
  qfs::Rng rng(8);
  EXPECT_THROW(run_noisy(wide, em, rng), AssertionError);
  Circuit ok(2);
  EXPECT_THROW(run_noisy(ok, em, rng, {.shots = 0}), AssertionError);
}

// ---------------------------------------------------------------------------
// Density matrix
// ---------------------------------------------------------------------------

TEST(DensityMatrix, InitialStatePureZero) {
  DensityMatrix rho(2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
  StateVector zero(2);
  EXPECT_NEAR(rho.fidelity_with(zero), 1.0, 1e-12);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStateVector) {
  qfs::Rng rng(11);
  Circuit c(3);
  c.h(0).cx(0, 1).rz(0.7, 2).cz(1, 2).t(0);
  DensityMatrix rho(3);
  StateVector sv(3);
  for (const auto& g : c.gates()) {
    rho.apply_gate(g);
    sv.apply_gate(g);
  }
  EXPECT_NEAR(rho.fidelity_with(sv), 1.0, 1e-10);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
}

TEST(DensityMatrix, FromPureRoundTrip) {
  qfs::Rng rng(12);
  StateVector sv = StateVector::random(3, rng);
  DensityMatrix rho = DensityMatrix::from_pure(sv);
  EXPECT_NEAR(rho.fidelity_with(sv), 1.0, 1e-10);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, DepolarizingReducesPurity) {
  DensityMatrix rho(1);
  rho.apply_gate(circuit::make_gate(circuit::GateKind::kH, {0}));
  rho.apply_depolarizing({0}, 0.5);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
  EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, FullDepolarizingOnOneQubitIsMaximallyMixed) {
  DensityMatrix rho(1);
  // p = 3/4 of a uniform Pauli error = the fully depolarizing channel.
  rho.apply_depolarizing({0}, 0.75);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-10);
}

TEST(DensityMatrix, TwoQubitDepolarizingKeepsTrace) {
  DensityMatrix rho(2);
  rho.apply_gate(circuit::make_gate(circuit::GateKind::kH, {0}));
  rho.apply_gate(circuit::make_gate(circuit::GateKind::kCx, {0, 1}));
  rho.apply_depolarizing({0, 1}, 0.3);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, ExactNoisyFidelityMatchesMonteCarlo) {
  // The three estimators triangulate: DM exact == MC limit, and both are
  // bounded below by the analytic error-free product.
  ErrorModel em(0.99, 0.95, 1.0);
  Circuit c = workloads::ghz(4);
  double exact = exact_noisy_fidelity(c, em);
  qfs::Rng rng(13);
  NoisyRunResult mc = run_noisy(c, em, rng, {.shots = 3000});
  EXPECT_NEAR(mc.mean_state_fidelity, exact, 0.02);
  EXPECT_GE(exact + 1e-9, mc.error_free_fraction - 0.03);
}

TEST(DensityMatrix, ExactFidelityDecreasesWithNoise) {
  Circuit c = workloads::ghz(3);
  double clean = exact_noisy_fidelity(c, ErrorModel(1.0, 1.0, 1.0));
  double noisy = exact_noisy_fidelity(c, ErrorModel(0.98, 0.9, 1.0));
  EXPECT_NEAR(clean, 1.0, 1e-10);
  EXPECT_LT(noisy, 0.95);
}

TEST(DensityMatrix, WidthContract) {
  EXPECT_THROW(DensityMatrix(9), AssertionError);
}

TEST(Noisy, DeterministicPerSeed) {
  ErrorModel em(0.99, 0.95, 0.99);
  Circuit c = workloads::ghz(4);
  qfs::Rng a(9), b(9);
  NoisyRunResult ra = run_noisy(c, em, a, {.shots = 100});
  NoisyRunResult rb = run_noisy(c, em, b, {.shots = 100});
  EXPECT_DOUBLE_EQ(ra.mean_state_fidelity, rb.mean_state_fidelity);
  EXPECT_DOUBLE_EQ(ra.error_free_fraction, rb.error_free_fraction);
}

}  // namespace
}  // namespace qfs::sim
