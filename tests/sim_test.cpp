#include <gtest/gtest.h>

#include <cmath>

#include "sim/equivalence.h"
#include "sim/statevector.h"

namespace qfs::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;

constexpr double kTol = 1e-10;

TEST(StateVector, InitialStateIsZeroKet) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(sv.probability(0), 1.0, kTol);
  for (std::size_t i = 1; i < 8; ++i) EXPECT_NEAR(sv.probability(i), 0.0, kTol);
}

TEST(StateVector, XFlipsQubit) {
  StateVector sv(2);
  sv.apply_gate(circuit::make_gate(GateKind::kX, {0}));
  EXPECT_NEAR(sv.probability(0b01), 1.0, kTol);
  sv.apply_gate(circuit::make_gate(GateKind::kX, {1}));
  EXPECT_NEAR(sv.probability(0b11), 1.0, kTol);
}

TEST(StateVector, HCreatesEqualSuperposition) {
  StateVector sv(1);
  sv.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  EXPECT_NEAR(sv.probability(0), 0.5, kTol);
  EXPECT_NEAR(sv.probability(1), 0.5, kTol);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.probability(0b00), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b11), 0.5, kTol);
  EXPECT_NEAR(sv.probability(0b01), 0.0, kTol);
  EXPECT_NEAR(sv.probability(0b10), 0.0, kTol);
}

TEST(StateVector, GhzOnFiveQubits) {
  Circuit c(5);
  c.h(0);
  for (int i = 0; i < 4; ++i) c.cx(i, i + 1);
  StateVector sv(5);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.probability(0), 0.5, kTol);
  EXPECT_NEAR(sv.probability(31), 0.5, kTol);
}

TEST(StateVector, CxControlQubitConvention) {
  // Control = operand 0. Prepare |q1 q0> = |01> (q0 set), cx(0, 1) should
  // flip q1 -> |11>.
  StateVector sv(2);
  sv.apply_gate(circuit::make_gate(GateKind::kX, {0}));
  sv.apply_gate(circuit::make_gate(GateKind::kCx, {0, 1}));
  EXPECT_NEAR(sv.probability(0b11), 1.0, kTol);
  // Control clear: no flip.
  StateVector sv2(2);
  sv2.apply_gate(circuit::make_gate(GateKind::kCx, {0, 1}));
  EXPECT_NEAR(sv2.probability(0b00), 1.0, kTol);
}

TEST(StateVector, SwapMovesAmplitude) {
  StateVector sv(2);
  sv.apply_gate(circuit::make_gate(GateKind::kX, {0}));
  sv.apply_gate(circuit::make_gate(GateKind::kSwap, {0, 1}));
  EXPECT_NEAR(sv.probability(0b10), 1.0, kTol);
}

TEST(StateVector, ToffoliTruthTable) {
  for (int input = 0; input < 8; ++input) {
    StateVector sv(3);
    for (int b = 0; b < 3; ++b) {
      if ((input >> b) & 1) sv.apply_gate(circuit::make_gate(GateKind::kX, {b}));
    }
    sv.apply_gate(circuit::make_gate(GateKind::kCcx, {0, 1, 2}));
    int expected = input;
    if ((input & 0b011) == 0b011) expected ^= 0b100;
    EXPECT_NEAR(sv.probability(static_cast<std::size_t>(expected)), 1.0, kTol)
        << "input " << input;
  }
}

TEST(StateVector, MarginalProbability) {
  StateVector sv(2);
  sv.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  EXPECT_NEAR(sv.marginal_one_probability(0), 0.5, kTol);
  EXPECT_NEAR(sv.marginal_one_probability(1), 0.0, kTol);
}

TEST(StateVector, NormPreservedByUnitaries) {
  qfs::Rng rng(3);
  StateVector sv = StateVector::random(4, rng);
  Circuit c(4);
  c.h(0).cx(0, 1).rz(0.7, 2).ccx(0, 1, 3).swap(2, 3).t(1);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(StateVector, RandomStateNormalised) {
  qfs::Rng rng(5);
  EXPECT_NEAR(StateVector::random(6, rng).norm(), 1.0, 1e-9);
}

TEST(StateVector, MeasureGateIsContractViolation) {
  StateVector sv(1);
  EXPECT_THROW(sv.apply_gate(circuit::make_gate(GateKind::kMeasure, {0})),
               AssertionError);
}

TEST(StateVector, BarrierIsNoOp) {
  StateVector sv(2);
  StateVector before = sv;
  sv.apply_gate(circuit::make_gate(GateKind::kBarrier, {0, 1}));
  EXPECT_NEAR(state_fidelity(before, sv), 1.0, kTol);
}

TEST(StateVector, InnerProductOrthogonalStates) {
  StateVector a(1);  // |0>
  StateVector b(1);
  b.apply_gate(circuit::make_gate(GateKind::kX, {0}));  // |1>
  EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, kTol);
}

TEST(StateVector, SampleFollowsDistribution) {
  qfs::Rng rng(7);
  StateVector sv(1);
  sv.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  int ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (sv.sample(rng) == 1) ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.5, 0.05);
}

TEST(StateVector, FromAmplitudesValidatesPowerOfTwo) {
  EXPECT_THROW(StateVector::from_amplitudes({1.0, 0.0, 0.0}), AssertionError);
}

// ---------------------------------------------------------------------------
// Phase correctness (amplitudes, not just probabilities)
// ---------------------------------------------------------------------------

TEST(StateVector, SGatePhase) {
  StateVector sv(1);
  sv.apply_gate(circuit::make_gate(GateKind::kH, {0}));
  sv.apply_gate(circuit::make_gate(GateKind::kS, {0}));
  EXPECT_NEAR(std::arg(sv.amplitude(1)), M_PI / 2, kTol);
}

TEST(StateVector, CzPhaseKickback) {
  StateVector sv(2);
  Circuit c(2);
  c.h(0).h(1).cz(0, 1);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.amplitude(0b11).real(), -0.5, kTol);
  EXPECT_NEAR(sv.amplitude(0b00).real(), 0.5, kTol);
}

// ---------------------------------------------------------------------------
// Equivalence checking
// ---------------------------------------------------------------------------

TEST(Equivalence, CircuitUnitaryOfCx) {
  Circuit c(2);
  c.cx(0, 1);
  circuit::CMatrix u = circuit_unitary(c);
  // Statevector convention: qubit 0 is the LSB; cx(0,1) maps |01> -> |11>.
  EXPECT_NEAR(std::abs(u.at(3, 1) - circuit::Complex(1)), 0.0, kTol);
  EXPECT_NEAR(std::abs(u.at(1, 3) - circuit::Complex(1)), 0.0, kTol);
  EXPECT_NEAR(std::abs(u.at(0, 0) - circuit::Complex(1)), 0.0, kTol);
}

TEST(Equivalence, HzhEqualsX) {
  Circuit a(1), b(1);
  a.h(0).z(0).h(0);
  b.x(0);
  EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(Equivalence, CxFromCzAndHadamards) {
  Circuit a(2), b(2);
  a.h(1).cz(0, 1).h(1);
  b.cx(0, 1);
  EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(Equivalence, SwapFromThreeCx) {
  Circuit a(2), b(2);
  a.cx(0, 1).cx(1, 0).cx(0, 1);
  b.swap(0, 1);
  EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(Equivalence, DifferentCircuitsNotEquivalent) {
  Circuit a(1), b(1);
  a.x(0);
  b.z(0);
  EXPECT_FALSE(circuits_equivalent(a, b));
}

TEST(Equivalence, GlobalPhaseIgnored) {
  Circuit a(1), b(1);
  a.rz(M_PI, 0);  // = -iZ
  b.z(0);
  EXPECT_TRUE(circuits_equivalent(a, b));
}

TEST(Equivalence, WidthMismatchNotEquivalent) {
  EXPECT_FALSE(circuits_equivalent(Circuit(1), Circuit(2)));
}

TEST(Equivalence, InverseComposesToIdentity) {
  qfs::Rng rng(11);
  Circuit c(3);
  c.h(0).cx(0, 1).rz(0.3, 2).ccx(0, 1, 2).t(1).swap(0, 2);
  Circuit full = c;
  full.append(c.inverse());
  EXPECT_TRUE(circuits_equivalent(full, Circuit(3)));
}

TEST(Equivalence, EmbedStateIdentityLayout) {
  qfs::Rng rng(13);
  StateVector small = StateVector::random(2, rng);
  StateVector big = embed_state(small, 4, {0, 1});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(big.amplitude(i) - small.amplitude(i)), 0.0, kTol);
  }
  for (std::size_t i = 4; i < 16; ++i) {
    EXPECT_NEAR(std::abs(big.amplitude(i)), 0.0, kTol);
  }
}

TEST(Equivalence, EmbedStatePermutedLayout) {
  StateVector small(1);
  small.apply_gate(circuit::make_gate(GateKind::kX, {0}));  // |1>
  StateVector big = embed_state(small, 3, {2});             // virtual 0 -> phys 2
  EXPECT_NEAR(big.probability(0b100), 1.0, kTol);
}

TEST(Equivalence, EmbedStateRejectsBadLayout) {
  StateVector small(2);
  EXPECT_THROW(embed_state(small, 3, {0, 0}), AssertionError);   // not injective
  EXPECT_THROW(embed_state(small, 3, {0, 3}), AssertionError);   // out of range
  EXPECT_THROW(embed_state(small, 1, {0, 1}), AssertionError);   // too small
}

TEST(Equivalence, MappingSemanticsIdentityLayouts) {
  qfs::Rng rng(17);
  Circuit c(3);
  c.h(0).cx(0, 1).cz(1, 2);
  // "Mapped" = same circuit on a 5-qubit register.
  Circuit mapped(5);
  mapped.h(0).cx(0, 1).cz(1, 2);
  EXPECT_TRUE(mapping_preserves_semantics(c, mapped, {0, 1, 2}, {0, 1, 2}, rng));
}

TEST(Equivalence, MappingSemanticsDetectsWrongCircuit) {
  qfs::Rng rng(19);
  Circuit c(2);
  c.cx(0, 1);
  Circuit mapped(3);
  mapped.cx(0, 2);  // acts on the wrong qubit given the claimed layout
  EXPECT_FALSE(
      mapping_preserves_semantics(c, mapped, {0, 1}, {0, 1}, rng));
}

TEST(Equivalence, MappingSemanticsWithSwapAndFinalLayout) {
  qfs::Rng rng(23);
  Circuit c(2);
  c.cx(0, 1);
  // Physical line 0-1-2 with virtual 0 on phys 0, virtual 1 on phys 2:
  // swap phys 1,2 brings virtual 1 next to virtual 0, then cx(0,1).
  Circuit mapped(3);
  mapped.swap(1, 2).cx(0, 1);
  EXPECT_TRUE(
      mapping_preserves_semantics(c, mapped, {0, 2}, {0, 1}, rng));
  // Wrong final layout must fail.
  EXPECT_FALSE(
      mapping_preserves_semantics(c, mapped, {0, 2}, {0, 2}, rng));
}

}  // namespace
}  // namespace qfs::sim
