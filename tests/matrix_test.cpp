#include <gtest/gtest.h>

#include <cmath>

#include "circuit/matrix.h"

namespace qfs::circuit {
namespace {

constexpr double kTol = 1e-12;

TEST(CMatrix, IdentityConstruction) {
  CMatrix m = CMatrix::identity(3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(m.at(r, c), (r == c ? Complex(1) : Complex(0)));
    }
  }
}

TEST(CMatrix, MultiplyAgainstIdentity) {
  Gate g = make_gate(GateKind::kH, {0});
  CMatrix h = gate_matrix(g);
  EXPECT_TRUE(approx_equal(h * CMatrix::identity(2), h, kTol));
  EXPECT_TRUE(approx_equal(CMatrix::identity(2) * h, h, kTol));
}

TEST(CMatrix, HSquaredIsIdentity) {
  CMatrix h = gate_matrix(make_gate(GateKind::kH, {0}));
  EXPECT_TRUE(approx_equal(h * h, CMatrix::identity(2), kTol));
}

TEST(CMatrix, AdjointOfS) {
  CMatrix s = gate_matrix(make_gate(GateKind::kS, {0}));
  CMatrix sdg = gate_matrix(make_gate(GateKind::kSdg, {0}));
  EXPECT_TRUE(approx_equal(s.adjoint(), sdg, kTol));
}

TEST(CMatrix, KronDimensions) {
  CMatrix a = CMatrix::identity(2);
  CMatrix b = CMatrix::identity(4);
  EXPECT_EQ(a.kron(b).dim(), 8);
}

TEST(CMatrix, KronOfPaulis) {
  CMatrix x = gate_matrix(make_gate(GateKind::kX, {0}));
  CMatrix z = gate_matrix(make_gate(GateKind::kZ, {0}));
  CMatrix xz = x.kron(z);
  // (X ⊗ Z)|00> = |10>  (qubit order: first factor is MSB)
  EXPECT_EQ(xz.at(2, 0), Complex(1));
  // (X ⊗ Z)|01> = -|11>
  EXPECT_EQ(xz.at(3, 1), Complex(-1));
}

TEST(CMatrix, ScaledAndNorm) {
  CMatrix m = CMatrix::identity(2).scaled(Complex(0, 2));
  EXPECT_DOUBLE_EQ(m.norm(), std::sqrt(8.0));
}

TEST(CMatrix, MaxAbsDiff) {
  CMatrix a = CMatrix::identity(2);
  CMatrix b = a;
  b.at(0, 1) = Complex(0.25, 0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.25);
}

TEST(CMatrix, ApproxEqualUpToPhase) {
  CMatrix h = gate_matrix(make_gate(GateKind::kH, {0}));
  CMatrix rotated = h.scaled(std::exp(Complex(0, 1.234)));
  EXPECT_FALSE(approx_equal(h, rotated, 1e-9));
  EXPECT_TRUE(approx_equal_up_to_phase(h, rotated, 1e-9));
}

TEST(CMatrix, ApproxEqualUpToPhaseRejectsDifferent) {
  CMatrix h = gate_matrix(make_gate(GateKind::kH, {0}));
  CMatrix x = gate_matrix(make_gate(GateKind::kX, {0}));
  EXPECT_FALSE(approx_equal_up_to_phase(h, x, 1e-9));
}

// Every unitary gate kind must produce a unitary matrix.
class AllUnitaryGates : public ::testing::TestWithParam<int> {};

TEST_P(AllUnitaryGates, MatrixIsUnitary) {
  auto kind = static_cast<GateKind>(GetParam());
  if (!is_unitary(kind)) GTEST_SKIP();
  int arity = gate_arity(kind);
  std::vector<int> qubits;
  for (int i = 0; i < arity; ++i) qubits.push_back(i);
  std::vector<double> params(static_cast<std::size_t>(gate_param_count(kind)),
                             0.37);
  Gate g = make_gate(kind, qubits, params);
  CMatrix m = gate_matrix(g);
  EXPECT_EQ(m.dim(), 1 << arity);
  EXPECT_TRUE(m.is_unitary(1e-10)) << gate_name(kind);
}

TEST_P(AllUnitaryGates, InverseMatrixIsAdjoint) {
  auto kind = static_cast<GateKind>(GetParam());
  if (!is_unitary(kind)) GTEST_SKIP();
  int arity = gate_arity(kind);
  std::vector<int> qubits;
  for (int i = 0; i < arity; ++i) qubits.push_back(i);
  std::vector<double> params(static_cast<std::size_t>(gate_param_count(kind)),
                             -0.81);
  Gate g = make_gate(kind, qubits, params);
  CMatrix u = gate_matrix(g);
  CMatrix inv = gate_matrix(inverse_gate(g));
  EXPECT_TRUE(approx_equal(inv, u.adjoint(), 1e-10)) << gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllUnitaryGates,
                         ::testing::Range(0, kNumGateKinds));

// ---------------------------------------------------------------------------
// Specific gate matrices (spot values)
// ---------------------------------------------------------------------------

TEST(GateMatrix, PauliX) {
  CMatrix x = gate_matrix(make_gate(GateKind::kX, {0}));
  EXPECT_EQ(x.at(0, 1), Complex(1));
  EXPECT_EQ(x.at(1, 0), Complex(1));
  EXPECT_EQ(x.at(0, 0), Complex(0));
}

TEST(GateMatrix, SxSquaredIsX) {
  CMatrix sx = gate_matrix(make_gate(GateKind::kSx, {0}));
  CMatrix x = gate_matrix(make_gate(GateKind::kX, {0}));
  EXPECT_TRUE(approx_equal(sx * sx, x, 1e-12));
}

TEST(GateMatrix, TSquaredIsS) {
  CMatrix t = gate_matrix(make_gate(GateKind::kT, {0}));
  CMatrix s = gate_matrix(make_gate(GateKind::kS, {0}));
  EXPECT_TRUE(approx_equal(t * t, s, 1e-12));
}

TEST(GateMatrix, RzPiMatchesZUpToPhase) {
  CMatrix rz = gate_matrix(make_gate(GateKind::kRz, {0}, {M_PI}));
  CMatrix z = gate_matrix(make_gate(GateKind::kZ, {0}));
  EXPECT_TRUE(approx_equal_up_to_phase(rz, z, 1e-12));
}

TEST(GateMatrix, RyPiOver2TimesXIsH) {
  CMatrix ry = gate_matrix(make_gate(GateKind::kRy, {0}, {M_PI / 2}));
  CMatrix x = gate_matrix(make_gate(GateKind::kX, {0}));
  CMatrix h = gate_matrix(make_gate(GateKind::kH, {0}));
  EXPECT_TRUE(approx_equal(x * ry, h, 1e-12));
}

TEST(GateMatrix, U3ReproducesH) {
  // H = U3(pi/2, 0, pi) up to phase.
  CMatrix u = gate_matrix(make_gate(GateKind::kU3, {0}, {M_PI / 2, 0, M_PI}));
  CMatrix h = gate_matrix(make_gate(GateKind::kH, {0}));
  EXPECT_TRUE(approx_equal_up_to_phase(u, h, 1e-12));
}

TEST(GateMatrix, PhaseGateDiagonal) {
  CMatrix p = gate_matrix(make_gate(GateKind::kPhase, {0}, {0.5}));
  EXPECT_EQ(p.at(0, 0), Complex(1));
  EXPECT_NEAR(std::arg(p.at(1, 1)), 0.5, 1e-12);
  EXPECT_EQ(p.at(0, 1), Complex(0));
}

TEST(GateMatrix, CxActionOnBasis) {
  CMatrix cx = gate_matrix(make_gate(GateKind::kCx, {0, 1}));
  // |10> -> |11> (control = operand 0 = MSB)
  EXPECT_EQ(cx.at(3, 2), Complex(1));
  EXPECT_EQ(cx.at(2, 3), Complex(1));
  EXPECT_EQ(cx.at(0, 0), Complex(1));
  EXPECT_EQ(cx.at(1, 1), Complex(1));
}

TEST(GateMatrix, CzDiagonal) {
  CMatrix cz = gate_matrix(make_gate(GateKind::kCz, {0, 1}));
  EXPECT_EQ(cz.at(0, 0), Complex(1));
  EXPECT_EQ(cz.at(1, 1), Complex(1));
  EXPECT_EQ(cz.at(2, 2), Complex(1));
  EXPECT_EQ(cz.at(3, 3), Complex(-1));
}

TEST(GateMatrix, SwapExchanges) {
  CMatrix sw = gate_matrix(make_gate(GateKind::kSwap, {0, 1}));
  EXPECT_EQ(sw.at(1, 2), Complex(1));
  EXPECT_EQ(sw.at(2, 1), Complex(1));
}

TEST(GateMatrix, CcxFlipsOnlyWhenBothControlsSet) {
  CMatrix ccx = gate_matrix(make_gate(GateKind::kCcx, {0, 1, 2}));
  // |110> -> |111>
  EXPECT_EQ(ccx.at(7, 6), Complex(1));
  EXPECT_EQ(ccx.at(6, 7), Complex(1));
  // |100> untouched
  EXPECT_EQ(ccx.at(4, 4), Complex(1));
}

TEST(GateMatrix, CswapSwapsTargetsWhenControlSet) {
  CMatrix cs = gate_matrix(make_gate(GateKind::kCswap, {0, 1, 2}));
  // |101> -> |110> (control=1, swap last two bits)
  EXPECT_EQ(cs.at(6, 5), Complex(1));
  EXPECT_EQ(cs.at(5, 6), Complex(1));
  // control=0: identity
  EXPECT_EQ(cs.at(1, 1), Complex(1));
  EXPECT_EQ(cs.at(2, 2), Complex(1));
}

TEST(GateMatrix, NonUnitaryIsContractViolation) {
  EXPECT_THROW(gate_matrix(make_gate(GateKind::kMeasure, {0})), AssertionError);
  EXPECT_THROW(gate_matrix(make_gate(GateKind::kBarrier, {0})), AssertionError);
}

// CZ is symmetric in its operands; CX is not.
TEST(GateMatrix, CzSymmetricCxNot) {
  CMatrix cz = gate_matrix(make_gate(GateKind::kCz, {0, 1}));
  CMatrix cx = gate_matrix(make_gate(GateKind::kCx, {0, 1}));
  CMatrix swap = gate_matrix(make_gate(GateKind::kSwap, {0, 1}));
  EXPECT_TRUE(approx_equal(swap * cz * swap, cz, 1e-12));
  EXPECT_FALSE(approx_equal(swap * cx * swap, cx, 1e-12));
}

}  // namespace
}  // namespace qfs::circuit
