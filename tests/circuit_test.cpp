#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "circuit/circuit.h"
#include "circuit/dag.h"
#include "circuit/draw.h"
#include "circuit/gate.h"
#include "support/strings.h"

namespace qfs::circuit {
namespace {

// ---------------------------------------------------------------------------
// Gate model
// ---------------------------------------------------------------------------

TEST(Gate, NamesAreDistinct) {
  std::set<std::string> names;
  for (int k = 0; k < kNumGateKinds; ++k) {
    names.insert(gate_name(static_cast<GateKind>(k)));
  }
  EXPECT_EQ(static_cast<int>(names.size()), kNumGateKinds);
}

TEST(Gate, ArityTable) {
  EXPECT_EQ(gate_arity(GateKind::kH), 1);
  EXPECT_EQ(gate_arity(GateKind::kCx), 2);
  EXPECT_EQ(gate_arity(GateKind::kCcx), 3);
  EXPECT_EQ(gate_arity(GateKind::kBarrier), 0);
  EXPECT_EQ(gate_arity(GateKind::kMeasure), 1);
}

TEST(Gate, ParamCountTable) {
  EXPECT_EQ(gate_param_count(GateKind::kRz), 1);
  EXPECT_EQ(gate_param_count(GateKind::kU3), 3);
  EXPECT_EQ(gate_param_count(GateKind::kCphase), 1);
  EXPECT_EQ(gate_param_count(GateKind::kH), 0);
}

TEST(Gate, UnitaryClassification) {
  EXPECT_TRUE(is_unitary(GateKind::kH));
  EXPECT_TRUE(is_unitary(GateKind::kCz));
  EXPECT_FALSE(is_unitary(GateKind::kMeasure));
  EXPECT_FALSE(is_unitary(GateKind::kReset));
  EXPECT_FALSE(is_unitary(GateKind::kBarrier));
}

TEST(Gate, TwoQubitClassification) {
  EXPECT_TRUE(is_two_qubit(GateKind::kCx));
  EXPECT_TRUE(is_two_qubit(GateKind::kSwap));
  EXPECT_FALSE(is_two_qubit(GateKind::kH));
  EXPECT_FALSE(is_two_qubit(GateKind::kCcx));
  EXPECT_FALSE(is_two_qubit(GateKind::kBarrier));
}

TEST(Gate, MakeGateValidatesArity) {
  EXPECT_THROW(make_gate(GateKind::kH, {0, 1}), AssertionError);
  EXPECT_THROW(make_gate(GateKind::kCx, {0}), AssertionError);
}

TEST(Gate, MakeGateValidatesParams) {
  EXPECT_THROW(make_gate(GateKind::kRz, {0}), AssertionError);
  EXPECT_THROW(make_gate(GateKind::kH, {0}, {1.0}), AssertionError);
}

TEST(Gate, MakeGateRejectsRepeatedOperands) {
  EXPECT_THROW(make_gate(GateKind::kCx, {1, 1}), AssertionError);
  EXPECT_THROW(make_gate(GateKind::kCcx, {0, 1, 0}), AssertionError);
}

TEST(Gate, MakeGateRejectsNegativeQubit) {
  EXPECT_THROW(make_gate(GateKind::kX, {-1}), AssertionError);
}

TEST(Gate, BarrierAcceptsAnyPositiveArity) {
  EXPECT_NO_THROW(make_gate(GateKind::kBarrier, {0}));
  EXPECT_NO_THROW(make_gate(GateKind::kBarrier, {0, 1, 2, 3}));
  EXPECT_THROW(make_gate(GateKind::kBarrier, {}), AssertionError);
}

TEST(Gate, InverseOfSelfInverseKinds) {
  for (GateKind kind : {GateKind::kX, GateKind::kY, GateKind::kZ, GateKind::kH,
                        GateKind::kCx, GateKind::kCz, GateKind::kSwap,
                        GateKind::kCcx}) {
    Gate g = make_gate(kind, kind == GateKind::kCcx
                                 ? std::vector<int>{0, 1, 2}
                                 : (gate_arity(kind) == 2
                                        ? std::vector<int>{0, 1}
                                        : std::vector<int>{0}));
    EXPECT_EQ(inverse_gate(g).kind, kind);
  }
}

TEST(Gate, InversePairs) {
  EXPECT_EQ(inverse_gate(make_gate(GateKind::kS, {0})).kind, GateKind::kSdg);
  EXPECT_EQ(inverse_gate(make_gate(GateKind::kSdg, {0})).kind, GateKind::kS);
  EXPECT_EQ(inverse_gate(make_gate(GateKind::kT, {0})).kind, GateKind::kTdg);
  EXPECT_EQ(inverse_gate(make_gate(GateKind::kSx, {0})).kind, GateKind::kSxdg);
}

TEST(Gate, InverseNegatesRotationAngle) {
  Gate g = make_gate(GateKind::kRy, {2}, {0.7});
  Gate inv = inverse_gate(g);
  EXPECT_EQ(inv.kind, GateKind::kRy);
  EXPECT_DOUBLE_EQ(inv.params[0], -0.7);
}

TEST(Gate, InverseOfU3SwapsPhiLambda) {
  Gate g = make_gate(GateKind::kU3, {0}, {0.1, 0.2, 0.3});
  Gate inv = inverse_gate(g);
  EXPECT_DOUBLE_EQ(inv.params[0], -0.1);
  EXPECT_DOUBLE_EQ(inv.params[1], -0.3);
  EXPECT_DOUBLE_EQ(inv.params[2], -0.2);
}

TEST(Gate, InverseOfMeasureIsContractViolation) {
  EXPECT_THROW(inverse_gate(make_gate(GateKind::kMeasure, {0})),
               AssertionError);
}

TEST(Gate, ToStringRendersOperandsAndParams) {
  EXPECT_EQ(gate_to_string(make_gate(GateKind::kCx, {0, 3})), "cx q[0],q[3]");
  std::string s = gate_to_string(make_gate(GateKind::kRz, {1}, {0.5}));
  EXPECT_NE(s.find("rz(0.5"), std::string::npos);
  EXPECT_NE(s.find("q[1]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Circuit
// ---------------------------------------------------------------------------

TEST(Circuit, EmptyCircuit) {
  Circuit c(3, "empty");
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_EQ(c.gate_count(), 0);
  EXPECT_EQ(c.depth(), 0);
  EXPECT_TRUE(c.used_qubits().empty());
}

TEST(Circuit, FluentBuildersAppend) {
  Circuit c(3);
  c.h(0).cx(0, 1).cz(1, 2).measure(2);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gates()[1].kind, GateKind::kCx);
}

TEST(Circuit, AddRejectsOutOfRangeQubit) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), AssertionError);
  EXPECT_THROW(c.cx(0, 5), AssertionError);
}

TEST(Circuit, GateCountExcludesBarriers) {
  Circuit c(3);
  c.h(0).barrier({0, 1, 2}).x(1);
  EXPECT_EQ(c.gate_count(), 2);
  EXPECT_EQ(c.size(), 3u);
}

TEST(Circuit, TwoQubitCounting) {
  Circuit c(3);
  c.h(0).cx(0, 1).cz(1, 2).swap(0, 2).ccx(0, 1, 2).measure(0);
  EXPECT_EQ(c.two_qubit_gate_count(), 3);  // ccx and measure excluded
  EXPECT_EQ(c.gate_count(), 6);
  EXPECT_DOUBLE_EQ(c.two_qubit_fraction(), 0.5);
}

TEST(Circuit, TwoQubitFractionEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Circuit(2).two_qubit_fraction(), 0.0);
}

TEST(Circuit, DepthSerialisesSharedQubits) {
  Circuit c(3);
  c.h(0).h(1).h(2);  // one layer
  EXPECT_EQ(c.depth(), 1);
  c.cx(0, 1);  // second layer
  EXPECT_EQ(c.depth(), 2);
  c.x(2);  // still fits layer 2
  EXPECT_EQ(c.depth(), 2);
  c.cx(1, 2);  // forced after both
  EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, DepthBarrierSynchronises) {
  Circuit c(2);
  c.h(0);
  c.barrier({0, 1});
  c.x(1);  // must start after the barrier, i.e. after h(0)
  EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, UsedQubits) {
  Circuit c(5);
  c.h(1).cx(3, 1);
  auto used = c.used_qubits();
  ASSERT_EQ(used.size(), 2u);
  EXPECT_EQ(used[0], 1);
  EXPECT_EQ(used[1], 3);
}

TEST(Circuit, UsedQubitsIgnoresBarriers) {
  Circuit c(3);
  c.barrier({0, 1, 2});
  EXPECT_TRUE(c.used_qubits().empty());
}

TEST(Circuit, AppendCircuit) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.cx(0, 1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Circuit, AppendWiderIsContractViolation) {
  Circuit a(2), b(3);
  EXPECT_THROW(a.append(b), AssertionError);
}

TEST(Circuit, InverseReversesAndInverts) {
  Circuit c(2);
  c.h(0).s(1).cx(0, 1);
  Circuit inv = c.inverse();
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(inv.gates()[0].kind, GateKind::kCx);
  EXPECT_EQ(inv.gates()[1].kind, GateKind::kSdg);
  EXPECT_EQ(inv.gates()[2].kind, GateKind::kH);
}

TEST(Circuit, InverseOfMeasureIsContractViolation) {
  Circuit c(1);
  c.measure(0);
  EXPECT_THROW(c.inverse(), AssertionError);
}

TEST(Circuit, CountByKind) {
  Circuit c(2);
  c.h(0).h(1).cx(0, 1);
  auto counts = c.count_by_kind();
  EXPECT_EQ(counts[GateKind::kH], 2);
  EXPECT_EQ(counts[GateKind::kCx], 1);
}

TEST(Circuit, SatisfiesConnectivity) {
  Circuit c(3);
  c.cx(0, 1).cx(1, 2);
  auto line_adjacent = [](int a, int b) { return std::abs(a - b) == 1; };
  EXPECT_TRUE(c.satisfies_connectivity(line_adjacent));
  c.cx(0, 2);
  EXPECT_FALSE(c.satisfies_connectivity(line_adjacent));
}

TEST(Circuit, EqualityIsStructural) {
  Circuit a(2), b(2);
  a.h(0);
  b.h(0);
  EXPECT_EQ(a, b);
  b.x(1);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// ASCII drawing
// ---------------------------------------------------------------------------

TEST(Draw, SingleQubitLabels) {
  Circuit c(1);
  c.h(0).x(0).measure(0);
  std::string art = draw(c);
  EXPECT_NE(art.find("q0: "), std::string::npos);
  EXPECT_NE(art.find("H"), std::string::npos);
  EXPECT_NE(art.find("X"), std::string::npos);
  EXPECT_NE(art.find("M"), std::string::npos);
}

TEST(Draw, ControlDotAndTarget) {
  Circuit c(2);
  c.cx(0, 1);
  std::string art = draw(c);
  EXPECT_NE(art.find("●"), std::string::npos);
  EXPECT_NE(art.find("X"), std::string::npos);
  EXPECT_NE(art.find("│"), std::string::npos);  // bridge between rows
}

TEST(Draw, CrossingWireUsesCrossGlyph) {
  Circuit c(3);
  c.cz(0, 2);  // passes over q1
  std::string art = draw(c);
  EXPECT_NE(art.find("┼"), std::string::npos);
}

TEST(Draw, UnrelatedSameLayerGatesDoNotBridge) {
  // rx(0) and swap(1,2) share a layer: no vertical bar between q0 and q1.
  Circuit c(3);
  c.cz(0, 1).swap(1, 2).rx(1.5, 0);
  std::string art = draw(c);
  auto lines = qfs::split(art, '\n');
  // Line 1 is the q0-q1 connector row; the rx/swap column must hold no '│'
  // beyond the cz one. Count bridges in that row: exactly 1 (the cz).
  int bridges = 0;
  for (std::size_t i = 0; i + 2 < lines[1].size(); ++i) {
    if (lines[1].compare(i, 3, "│") == 0) ++bridges;
  }
  EXPECT_EQ(bridges, 1);
}

TEST(Draw, ParamsShownOnDemand) {
  Circuit c(1);
  c.rx(1.5708, 0);
  EXPECT_EQ(draw(c).find("1.57"), std::string::npos);
  DrawOptions opts;
  opts.show_params = true;
  EXPECT_NE(draw(c, opts).find("rx(1.57)"), std::string::npos);
}

TEST(Draw, TruncatesLongCircuits) {
  Circuit c(1);
  for (int i = 0; i < 100; ++i) c.x(0);
  DrawOptions opts;
  opts.max_layers = 5;
  std::string art = draw(c, opts);
  EXPECT_NE(art.find("…"), std::string::npos);
}

TEST(Draw, RowCountMatchesQubits) {
  Circuit c(4);
  c.h(0);
  auto lines = qfs::split(draw(c), '\n');
  // 4 wire rows + 3 connector rows + trailing empty after final newline.
  EXPECT_EQ(lines.size(), 8u);
}

// ---------------------------------------------------------------------------
// DependencyDag
// ---------------------------------------------------------------------------

TEST(Dag, IndependentGatesShareLayerZero) {
  Circuit c(3);
  c.h(0).h(1).h(2);
  DependencyDag dag(c);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(dag.predecessors(i).empty());
    EXPECT_EQ(dag.asap_layer()[static_cast<std::size_t>(i)], 0);
  }
  EXPECT_EQ(dag.depth(), 1);
}

TEST(Dag, ChainDependencies) {
  Circuit c(2);
  c.h(0).cx(0, 1).x(1);
  DependencyDag dag(c);
  EXPECT_TRUE(dag.predecessors(0).empty());
  ASSERT_EQ(dag.predecessors(1).size(), 1u);
  EXPECT_EQ(dag.predecessors(1)[0], 0);
  ASSERT_EQ(dag.predecessors(2).size(), 1u);
  EXPECT_EQ(dag.predecessors(2)[0], 1);
  EXPECT_EQ(dag.depth(), 3);
}

TEST(Dag, SharedTwoQubitPredecessorNotDuplicated) {
  Circuit c(2);
  c.cx(0, 1).cx(0, 1);
  DependencyDag dag(c);
  EXPECT_EQ(dag.predecessors(1).size(), 1u);
  EXPECT_EQ(dag.successors(0).size(), 1u);
}

TEST(Dag, DepthMatchesCircuitDepth) {
  Circuit c(4);
  c.h(0).cx(0, 1).cx(2, 3).cz(1, 2).x(0);
  DependencyDag dag(c);
  EXPECT_EQ(dag.depth(), c.depth());
}

TEST(Dag, BarrierOrdersButAddsNoDepth) {
  Circuit c(2);
  c.h(0);
  c.barrier({0, 1});
  c.x(1);
  DependencyDag dag(c);
  EXPECT_EQ(dag.depth(), 2);
  // x(1) transitively depends on h(0) through the barrier.
  ASSERT_EQ(dag.predecessors(2).size(), 1u);
  EXPECT_EQ(dag.predecessors(2)[0], 1);
}

TEST(Dag, LayersPartitionAllGates) {
  Circuit c(4);
  c.h(0).cx(0, 1).h(2).cx(2, 3).cz(1, 2);
  DependencyDag dag(c);
  auto layers = dag.layers();
  std::size_t total = 0;
  for (const auto& layer : layers) total += layer.size();
  EXPECT_EQ(total, c.size());
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  Circuit c(3);
  c.h(0).cx(0, 1).cz(1, 2).x(2);
  DependencyDag dag(c);
  auto order = dag.topological_order();
  std::vector<int> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (int g = 0; g < dag.num_gates(); ++g) {
    for (int p : dag.predecessors(g)) {
      EXPECT_LT(position[static_cast<std::size_t>(p)],
                position[static_cast<std::size_t>(g)]);
    }
  }
}

}  // namespace
}  // namespace qfs::circuit
