#include <gtest/gtest.h>

#include "compiler/schedule.h"
#include "device/device.h"
#include "isa/binary.h"
#include "isa/pulse.h"
#include "isa/timed_program.h"
#include "mapper/pipeline.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"

namespace qfs::isa {
namespace {

using circuit::Circuit;
using circuit::GateKind;
using device::Device;

TimedProgram lower(const Circuit& c, const Device& d) {
  return lower_to_timed_program(c, compiler::asap_schedule(c, d));
}

TEST(TimedProgram, EmptyCircuit) {
  Device d = device::line_device(2);
  TimedProgram p = lower(Circuit(2), d);
  EXPECT_EQ(p.instruction_count(), 0);
  EXPECT_EQ(p.makespan_cycles(), 0);
  EXPECT_DOUBLE_EQ(p.average_bundle_width(), 0.0);
}

TEST(TimedProgram, ParallelGatesShareBundle) {
  Device d = device::line_device(3);
  Circuit c(3);
  c.rx(0.1, 0).rx(0.2, 1).rx(0.3, 2);
  TimedProgram p = lower(c, d);
  ASSERT_EQ(p.bundles().size(), 1u);
  EXPECT_EQ(p.bundles()[0].instructions.size(), 3u);
  EXPECT_DOUBLE_EQ(p.average_bundle_width(), 3.0);
}

TEST(TimedProgram, SequentialGatesSeparateBundles) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.rx(0.1, 0).rz(0.2, 0);
  TimedProgram p = lower(c, d);
  ASSERT_EQ(p.bundles().size(), 2u);
  EXPECT_EQ(p.bundles()[0].start_cycle, 0);
  EXPECT_EQ(p.bundles()[1].start_cycle, 1);
}

TEST(TimedProgram, BarriersDropped) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.rx(0.1, 0);
  c.barrier({0, 1});
  c.rx(0.2, 1);
  TimedProgram p = lower(c, d);
  EXPECT_EQ(p.instruction_count(), 2);
  for (const auto& b : p.bundles()) {
    for (const auto& ins : b.instructions) {
      EXPECT_NE(ins.kind, GateKind::kBarrier);
    }
  }
}

TEST(TimedProgram, MakespanMatchesSchedule) {
  Device d = device::line_device(4);
  Circuit c(4);
  c.cz(0, 1).cz(1, 2).measure(3);
  auto schedule = compiler::asap_schedule(c, d);
  TimedProgram p = lower_to_timed_program(c, schedule);
  EXPECT_EQ(p.makespan_cycles(), schedule.makespan_cycles);
}

TEST(TimedProgram, QubitUtilization) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.cz(0, 1);  // 2 cycles on both qubits, makespan 2
  TimedProgram p = lower(c, d);
  auto util = p.qubit_utilization();
  EXPECT_DOUBLE_EQ(util[0], 1.0);
  EXPECT_DOUBLE_EQ(util[1], 1.0);
}

TEST(TimedProgram, TextFormat) {
  Device d = device::line_device(2);
  Circuit c(2, "demo");
  c.rx(1.5, 0).cz(0, 1);
  TimedProgram p = lower(c, d);
  std::string text = p.to_text();
  EXPECT_NE(text.find("# timed program: demo"), std::string::npos);
  EXPECT_NE(text.find(".qubits 2"), std::string::npos);
  EXPECT_NE(text.find("rx(1.5"), std::string::npos);
  EXPECT_NE(text.find("cz Q0,Q1"), std::string::npos);
  EXPECT_NE(text.find("0: {"), std::string::npos);
}

TEST(TimedProgram, BundleOrderingEnforced) {
  std::vector<Bundle> out_of_order(2);
  out_of_order[0].start_cycle = 5;
  out_of_order[1].start_cycle = 3;
  EXPECT_THROW(TimedProgram("bad", 20.0, 2, out_of_order), AssertionError);
}

TEST(ProgramValidation, MappedScheduledProgramIsValid) {
  Device d = device::surface17_device();
  qfs::Rng rng(1);
  Circuit c = workloads::qft(5);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  auto schedule = compiler::asap_schedule(r.mapped, d);
  TimedProgram p = lower_to_timed_program(r.mapped, schedule);
  EXPECT_TRUE(program_is_valid(p, d));
  EXPECT_GT(p.average_bundle_width(), 1.0);  // some parallelism exists
}

TEST(ProgramValidation, DetectsUncoupledTwoQubitInstruction) {
  Device d = device::line_device(3);
  Bundle b;
  b.start_cycle = 0;
  b.instructions.push_back(Instruction{GateKind::kCz, {0, 2}, {}, 2});
  TimedProgram p("bad", 20.0, 3, {b});
  EXPECT_FALSE(program_is_valid(p, d));
}

TEST(ProgramValidation, DetectsQubitOverlap) {
  Device d = device::line_device(2);
  Bundle b0, b1;
  b0.start_cycle = 0;
  b0.instructions.push_back(Instruction{GateKind::kCz, {0, 1}, {}, 2});
  b1.start_cycle = 1;  // overlaps the 2-cycle cz
  b1.instructions.push_back(Instruction{GateKind::kX, {0}, {}, 1});
  TimedProgram p("bad", 20.0, 2, {b0, b1});
  EXPECT_FALSE(program_is_valid(p, d));
}

TEST(ProgramValidation, DetectsControlGroupViolation) {
  Device d = device::surface17_device();
  // Qubits 0 and 1 share group 0: different kinds in one bundle = invalid.
  Bundle b;
  b.start_cycle = 0;
  b.instructions.push_back(Instruction{GateKind::kRx, {0}, {0.1}, 1});
  b.instructions.push_back(Instruction{GateKind::kRy, {1}, {0.1}, 1});
  TimedProgram p("bad", 20.0, 17, {b});
  EXPECT_FALSE(program_is_valid(p, d));
}

TEST(ProgramValidation, WiderThanDeviceInvalid) {
  Device d = device::line_device(2);
  TimedProgram p("wide", 20.0, 5, {});
  EXPECT_FALSE(program_is_valid(p, d));
}

// ---------------------------------------------------------------------------
// Pulse lowering (control electronics)
// ---------------------------------------------------------------------------

TEST(Pulse, ChannelsByInstructionKind) {
  Device d = device::line_device(3);
  Circuit c(3);
  c.rx(0.5, 0).cz(1, 2).measure(0);
  auto result = lower_to_pulses(lower(c, d), d);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const PulseSchedule& ps = result.value();
  EXPECT_EQ(ps.total_pulses(), 3);
  bool have_drive = false, have_flux = false, have_readout = false;
  for (const auto& [id, pulses] : ps.channels()) {
    (void)pulses;
    if (id.kind == ChannelKind::kDrive) have_drive = true;
    if (id.kind == ChannelKind::kFlux) have_flux = true;
    if (id.kind == ChannelKind::kReadout) have_readout = true;
  }
  EXPECT_TRUE(have_drive);
  EXPECT_TRUE(have_flux);
  EXPECT_TRUE(have_readout);
}

TEST(Pulse, WaveformNamesCarryAngles) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.rx(1.5, 0);
  auto result = lower_to_pulses(lower(c, d), d);
  ASSERT_TRUE(result.is_ok());
  const auto& pulses = result.value().channels().begin()->second;
  ASSERT_EQ(pulses.size(), 1u);
  EXPECT_NE(pulses[0].waveform.find("drag(rx,1.5"), std::string::npos);
}

TEST(Pulse, UncoupledPairRejected) {
  Device d = device::line_device(3);
  Bundle b;
  b.start_cycle = 0;
  b.instructions.push_back(Instruction{GateKind::kCz, {0, 2}, {}, 2});
  TimedProgram p("bad", 20.0, 3, {b});
  auto result = lower_to_pulses(p, d);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("flux"), std::string::npos);
}

TEST(Pulse, ChannelExclusivityValidated) {
  Device d = device::line_device(2);
  // Two overlapping pulses on one drive channel — an invalid hand-built
  // program (same qubit, overlapping bundles).
  Bundle b0, b1;
  b0.start_cycle = 0;
  b0.instructions.push_back(Instruction{GateKind::kRx, {0}, {0.1}, 3});
  b1.start_cycle = 1;
  b1.instructions.push_back(Instruction{GateKind::kRz, {0}, {0.1}, 3});
  TimedProgram p("bad", 20.0, 2, {b0, b1});
  auto result = lower_to_pulses(p, d);
  EXPECT_FALSE(result.is_ok());
}

TEST(Pulse, MappedScheduledCircuitLowersCleanly) {
  Device d = device::surface17_device();
  qfs::Rng rng(4);
  Circuit c = workloads::qft(5);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  TimedProgram p = lower(r.mapped, d);
  auto result = lower_to_pulses(p, d);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().total_pulses(), p.instruction_count());
  EXPECT_TRUE(result.value().channels_exclusive());
  // Utilisation is bounded by 1 everywhere.
  for (const auto& [id, util] :
       result.value().channel_utilization(p.makespan_cycles())) {
    (void)id;
    EXPECT_LE(util, 1.0 + 1e-12);
    EXPECT_GT(util, 0.0);
  }
}

TEST(Pulse, ChannelNames) {
  EXPECT_EQ(channel_name(ChannelId{ChannelKind::kDrive, 3, -1}), "drive:Q3");
  EXPECT_EQ(channel_name(ChannelId{ChannelKind::kFlux, 1, 4}), "flux:Q1-Q4");
  EXPECT_EQ(channel_name(ChannelId{ChannelKind::kReadout, 0, -1}),
            "readout:Q0");
}

// ---------------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------------

TEST(Binary, RoundTripSmallProgram) {
  Device d = device::line_device(3);
  Circuit c(3, "bin");
  c.rx(0.5, 0).cz(0, 1).rz(-1.25, 2).measure(1);
  TimedProgram p = lower(c, d);
  auto words = encode_program(p);
  EXPECT_EQ(words[0], kBinaryMagic);
  auto back = decode_program(words);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  const TimedProgram& q = back.value();
  EXPECT_EQ(q.num_qubits(), p.num_qubits());
  EXPECT_EQ(q.instruction_count(), p.instruction_count());
  EXPECT_EQ(q.makespan_cycles(), p.makespan_cycles());
  EXPECT_DOUBLE_EQ(q.cycle_time_ns(), p.cycle_time_ns());
  // Structure: same bundles, same kinds/qubits, angles to float32 accuracy.
  ASSERT_EQ(q.bundles().size(), p.bundles().size());
  for (std::size_t b = 0; b < p.bundles().size(); ++b) {
    ASSERT_EQ(q.bundles()[b].instructions.size(),
              p.bundles()[b].instructions.size());
    EXPECT_EQ(q.bundles()[b].start_cycle, p.bundles()[b].start_cycle);
    for (std::size_t i = 0; i < p.bundles()[b].instructions.size(); ++i) {
      const auto& orig = p.bundles()[b].instructions[i];
      const auto& dec = q.bundles()[b].instructions[i];
      EXPECT_EQ(dec.kind, orig.kind);
      EXPECT_EQ(dec.qubits, orig.qubits);
      ASSERT_EQ(dec.params.size(), orig.params.size());
      for (std::size_t pi = 0; pi < orig.params.size(); ++pi) {
        EXPECT_NEAR(dec.params[pi], orig.params[pi], 1e-6);
      }
    }
  }
}

TEST(Binary, RoundTripMappedCircuit) {
  Device d = device::surface17_device();
  qfs::Rng rng(3);
  Circuit c = workloads::qft(5);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  TimedProgram p = lower(r.mapped, d);
  auto back = decode_program(encode_program(p));
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().instruction_count(), p.instruction_count());
  EXPECT_TRUE(program_is_valid(back.value(), d));
}

TEST(Binary, DecodeRejectsBadMagic) {
  auto result = decode_program({0xDEADBEEF, 2, 200, 0});
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST(Binary, DecodeRejectsTruncation) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.cz(0, 1);
  auto words = encode_program(lower(c, d));
  words.pop_back();
  EXPECT_FALSE(decode_program(words).is_ok());
}

TEST(Binary, DecodeRejectsTrailingGarbage) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.x(0);
  auto words = encode_program(lower(c, d));
  words.push_back(123);
  EXPECT_FALSE(decode_program(words).is_ok());
}

TEST(Binary, DecodeRejectsBadOpcode) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.x(0);
  auto words = encode_program(lower(c, d));
  words[4] = (words[4] & ~0xFFu) | 0xEE;  // invalid opcode
  EXPECT_FALSE(decode_program(words).is_ok());
}

TEST(Binary, DecodeRejectsOperandOutOfRange) {
  Device d = device::line_device(2);
  Circuit c(2);
  c.x(0);
  auto words = encode_program(lower(c, d));
  words[4] = (words[4] & ~0xFF00u) | (7u << 8);  // qubit 7 of 2
  EXPECT_FALSE(decode_program(words).is_ok());
}

TEST(Binary, EmptyProgramEncodes) {
  Device d = device::line_device(1);
  TimedProgram p = lower(Circuit(1), d);
  auto back = decode_program(encode_program(p));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().instruction_count(), 0);
}

TEST(ProgramValidation, RandomMappedCircuitsLowerCleanly) {
  Device d = device::surface17_device();
  qfs::Rng gen(2);
  for (int trial = 0; trial < 4; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 8;
    spec.num_gates = 60;
    spec.two_qubit_fraction = 0.35;
    Circuit c = workloads::random_circuit(spec, gen);
    qfs::Rng rng(trial);
    mapper::MappingResult r = mapper::map_circuit(c, d, rng);
    auto schedule = compiler::asap_schedule(r.mapped, d);
    TimedProgram p = lower_to_timed_program(r.mapped, schedule);
    EXPECT_TRUE(program_is_valid(p, d)) << "trial " << trial;
    EXPECT_EQ(p.instruction_count(), r.mapped.gate_count());
  }
}

}  // namespace
}  // namespace qfs::isa
