#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "graph/generators.h"
#include "sim/stabilizer.h"
#include "sim/statevector.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"
#include "workloads/reversible.h"
#include "workloads/suite.h"
#include "workloads/suite_io.h"

namespace qfs::workloads {
namespace {

using circuit::Circuit;
using circuit::GateKind;

// ---------------------------------------------------------------------------
// Random circuits
// ---------------------------------------------------------------------------

TEST(RandomCircuit, ExactSizeParameters) {
  qfs::Rng rng(1);
  RandomCircuitSpec spec;
  spec.num_qubits = 7;
  spec.num_gates = 200;
  spec.two_qubit_fraction = 0.35;
  Circuit c = random_circuit(spec, rng);
  EXPECT_EQ(c.num_qubits(), 7);
  EXPECT_EQ(c.gate_count(), 200);
  EXPECT_EQ(c.two_qubit_gate_count(), 70);
}

TEST(RandomCircuit, FractionRounding) {
  qfs::Rng rng(2);
  RandomCircuitSpec spec;
  spec.num_qubits = 4;
  spec.num_gates = 10;
  spec.two_qubit_fraction = 0.26;  // rounds to 3 gates
  Circuit c = random_circuit(spec, rng);
  EXPECT_EQ(c.two_qubit_gate_count(), 3);
}

TEST(RandomCircuit, ZeroAndFullTwoQubitFraction) {
  qfs::Rng rng(3);
  RandomCircuitSpec spec;
  spec.num_qubits = 3;
  spec.num_gates = 20;
  spec.two_qubit_fraction = 0.0;
  EXPECT_EQ(random_circuit(spec, rng).two_qubit_gate_count(), 0);
  spec.two_qubit_fraction = 1.0;
  EXPECT_EQ(random_circuit(spec, rng).two_qubit_gate_count(), 20);
}

TEST(RandomCircuit, SingleQubitNeedsNoPairs) {
  qfs::Rng rng(4);
  RandomCircuitSpec spec;
  spec.num_qubits = 1;
  spec.num_gates = 10;
  spec.two_qubit_fraction = 0.0;
  EXPECT_EQ(random_circuit(spec, rng).gate_count(), 10);
  spec.two_qubit_fraction = 0.5;
  EXPECT_THROW(random_circuit(spec, rng), AssertionError);
}

TEST(RandomCircuit, DeterministicPerSeed) {
  RandomCircuitSpec spec;
  spec.num_qubits = 5;
  spec.num_gates = 50;
  spec.two_qubit_fraction = 0.4;
  qfs::Rng a(77), b(77);
  EXPECT_EQ(random_circuit(spec, a), random_circuit(spec, b));
}

// ---------------------------------------------------------------------------
// Real algorithms
// ---------------------------------------------------------------------------

TEST(Ghz, StructureAndState) {
  Circuit c = ghz(4);
  EXPECT_EQ(c.gate_count(), 4);  // 1 H + 3 CX
  sim::StateVector sv(4);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.probability(0b0000), 0.5, 1e-10);
  EXPECT_NEAR(sv.probability(0b1111), 0.5, 1e-10);
}

TEST(Qft, GateCount) {
  Circuit c = qft(5, false);
  // n H gates + n(n-1)/2 controlled-phase.
  EXPECT_EQ(c.gate_count(), 5 + 10);
  Circuit with_swaps = qft(5, true);
  EXPECT_EQ(with_swaps.gate_count(), 15 + 2);
}

TEST(Qft, MapsBasisStateToUniformAmplitudes) {
  Circuit c = qft(3, true);
  sim::StateVector sv(3);
  sv.apply_circuit(c);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(sv.probability(i), 0.125, 1e-10);
  }
}

TEST(Qft, OnOneStateHasCorrectPhases) {
  // QFT|1> amplitudes: (1/sqrt(8)) * omega^y with omega = e^{2*pi*i/8}.
  // Circuit convention: qubit 0 is the most-significant bit of x and y
  // (the phase ladder starts there), so |x=1> is prepared by flipping
  // qubit n-1 and the output value y is the bit-reversal of the simulator
  // basis index k (simulator indices are LSB-first).
  const int n = 3;
  Circuit prep(n);
  prep.x(n - 1);
  prep.append(qft(n, true));
  sim::StateVector sv(n);
  sv.apply_circuit(prep);
  auto bitrev = [n](std::size_t k) {
    std::size_t y = 0;
    for (int b = 0; b < n; ++b) {
      if ((k >> b) & 1) y |= std::size_t{1} << (n - 1 - b);
    }
    return y;
  };
  for (std::size_t k = 0; k < 8; ++k) {
    double expected = 2.0 * M_PI * static_cast<double>(bitrev(k)) / 8.0;
    double actual = std::arg(sv.amplitude(k)) - std::arg(sv.amplitude(0));
    double diff = std::remainder(actual - expected, 2.0 * M_PI);
    EXPECT_NEAR(diff, 0.0, 1e-9) << "k=" << k;
  }
}

TEST(BernsteinVazirani, RecoversSecret) {
  const int n = 6;
  const std::uint64_t secret = 0b101101;
  Circuit c = bernstein_vazirani(n, secret);
  // Strip measurements for pure-state simulation.
  Circuit unitary(c.num_qubits());
  for (const auto& g : c.gates()) {
    if (g.kind != GateKind::kMeasure) unitary.add(g);
  }
  sim::StateVector sv(c.num_qubits());
  sv.apply_circuit(unitary);
  for (int b = 0; b < n; ++b) {
    double p1 = sv.marginal_one_probability(b);
    if ((secret >> b) & 1) {
      EXPECT_NEAR(p1, 1.0, 1e-9) << "bit " << b;
    } else {
      EXPECT_NEAR(p1, 0.0, 1e-9) << "bit " << b;
    }
  }
}

TEST(Grover, AmplifiesMarkedItem) {
  const int n = 4;
  const std::uint64_t marked = 0b1011;
  Circuit c = grover(n, marked);
  Circuit unitary(c.num_qubits());
  for (const auto& g : c.gates()) {
    if (g.kind != GateKind::kMeasure) unitary.add(g);
  }
  sim::StateVector sv(c.num_qubits());
  sv.apply_circuit(unitary);
  // Marginal over data qubits: ancillas are returned to |0>, so the
  // marked-state probability is concentrated at basis index = marked.
  EXPECT_GT(sv.probability(marked), 0.9);
}

TEST(Grover, ThreeQubitVariantUsesNoAncilla) {
  Circuit c = grover(3, 0b111, 1);
  EXPECT_EQ(c.num_qubits(), 4);  // n + (n-2) = 3 + 1
}

TEST(Grover, ValidatesArguments) {
  EXPECT_THROW(grover(1, 0), AssertionError);
  EXPECT_THROW(grover(3, 8), AssertionError);
}

TEST(CuccaroAdder, AddsCorrectly) {
  const int n = 3;
  Circuit adder = cuccaro_adder(n);
  auto a_bit = [](int i) { return 1 + 2 * i; };
  auto b_bit = [](int i) { return 2 + 2 * i; };
  for (int a = 0; a < 8; ++a) {
    for (int b : {0, 3, 5, 7}) {
      Circuit prep(adder.num_qubits());
      for (int i = 0; i < n; ++i) {
        if ((a >> i) & 1) prep.x(a_bit(i));
        if ((b >> i) & 1) prep.x(b_bit(i));
      }
      prep.append(adder);
      sim::StateVector sv(adder.num_qubits());
      sv.apply_circuit(prep);
      // Read the expected output basis state: b register holds a+b.
      int sum = a + b;
      std::size_t expected = 0;
      for (int i = 0; i < n; ++i) {
        if ((a >> i) & 1) expected |= std::size_t{1} << a_bit(i);
        if ((sum >> i) & 1) expected |= std::size_t{1} << b_bit(i);
      }
      if ((sum >> n) & 1) expected |= std::size_t{1} << (2 * n + 1);
      EXPECT_NEAR(sv.probability(expected), 1.0, 1e-9)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Qaoa, LayerStructure) {
  qfs::Rng rng(5);
  graph::Graph ring = graph::cycle_graph(5);
  Circuit c = qaoa_maxcut(ring, 3, rng);
  EXPECT_EQ(c.num_qubits(), 5);
  // 5 H + 3 layers * (5 edges * 3 gates + 5 rx) + 5 measure.
  EXPECT_EQ(c.gate_count(), 5 + 3 * (15 + 5) + 5);
  EXPECT_EQ(c.two_qubit_gate_count(), 3 * 2 * 5);
}

TEST(Qaoa, InteractionMatchesProblemGraph) {
  qfs::Rng rng(6);
  graph::Graph star = graph::star_graph(5);
  Circuit c = qaoa_maxcut(star, 2, rng);
  // Interaction edges == problem edges.
  for (int leaf = 1; leaf < 5; ++leaf) {
    EXPECT_GT(c.two_qubit_gate_count(), 0);
  }
}

TEST(Vqe, GateCounts) {
  qfs::Rng rng(7);
  Circuit c = vqe_ansatz(4, 3, rng);
  // 3 layers * (4*2 rotations + 3 cx) + final 4*2 rotations.
  EXPECT_EQ(c.gate_count(), 3 * (8 + 3) + 8);
  EXPECT_EQ(c.two_qubit_gate_count(), 9);
}

TEST(WState, EqualOneHotSuperposition) {
  for (int n : {2, 3, 5}) {
    Circuit c = w_state(n);
    sim::StateVector sv(n);
    sv.apply_circuit(c);
    for (int q = 0; q < n; ++q) {
      EXPECT_NEAR(sv.probability(std::size_t{1} << q), 1.0 / n, 1e-9)
          << "n=" << n << " q=" << q;
    }
    // No amplitude anywhere else.
    EXPECT_NEAR(sv.probability(0), 0.0, 1e-9);
    if (n >= 2) {
      EXPECT_NEAR(sv.probability(0b11), 0.0, 1e-9);
    }
  }
}

TEST(WState, SingleQubitIsX) {
  Circuit c = w_state(1);
  sim::StateVector sv(1);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
}

TEST(PhaseEstimation, RecoversExactPhase) {
  const int t = 4;
  for (std::uint64_t k : {1u, 5u, 11u}) {
    double phase = static_cast<double>(k) / 16.0;
    Circuit c = phase_estimation(t, phase);
    Circuit unitary(c.num_qubits());
    for (const auto& g : c.gates()) {
      if (g.kind != GateKind::kMeasure) unitary.add(g);
    }
    sim::StateVector sv(c.num_qubits());
    sv.apply_circuit(unitary);
    // Counting register (qubits 0..t-1, LSB-first) holds k; eigenstate
    // qubit t stays |1>.
    std::size_t expected = k | (std::size_t{1} << t);
    EXPECT_NEAR(sv.probability(expected), 1.0, 1e-8) << "k=" << k;
  }
}

TEST(DeutschJozsa, ConstantOracleReturnsAllZeros) {
  Circuit c = deutsch_jozsa(5, 0);
  Circuit unitary(c.num_qubits());
  for (const auto& g : c.gates()) {
    if (g.kind != GateKind::kMeasure) unitary.add(g);
  }
  sim::StateVector sv(c.num_qubits());
  sv.apply_circuit(unitary);
  for (int q = 0; q < 5; ++q) {
    EXPECT_NEAR(sv.marginal_one_probability(q), 0.0, 1e-9);
  }
}

TEST(DeutschJozsa, BalancedOracleNeverAllZeros) {
  Circuit c = deutsch_jozsa(5, 0b10110);
  Circuit unitary(c.num_qubits());
  for (const auto& g : c.gates()) {
    if (g.kind != GateKind::kMeasure) unitary.add(g);
  }
  sim::StateVector sv(c.num_qubits());
  sv.apply_circuit(unitary);
  // P(input register all zero) must vanish for a balanced oracle.
  double p_zero = sv.probability(0) + sv.probability(std::size_t{1} << 5);
  EXPECT_NEAR(p_zero, 0.0, 1e-9);
}

TEST(IsingTrotter, StructureAndCounts) {
  Circuit c = ising_trotter(6, 4, 1.0, 0.5, 0.05);
  // Per step: 5 links * 3 gates + 6 rx = 21.
  EXPECT_EQ(c.gate_count(), 4 * 21);
  EXPECT_EQ(c.two_qubit_gate_count(), 4 * 10);
}

TEST(IsingTrotter, ZeroFieldCommutesWithZBasis) {
  // With h = 0 the evolution is diagonal: |00...0> stays put (up to phase).
  Circuit c = ising_trotter(4, 3, 0.8, 0.0, 0.1);
  sim::StateVector sv(4);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.probability(0), 1.0, 1e-9);
}

TEST(QuantumVolume, LayerCountsAndWidth) {
  qfs::Rng rng(31);
  Circuit c = quantum_volume(6, 5, rng);
  EXPECT_EQ(c.num_qubits(), 6);
  // 3 pairs per layer, 2 cx per pair, 5 layers.
  EXPECT_EQ(c.two_qubit_gate_count(), 30);
}

TEST(QuantumVolume, OddWidthLeavesOneQubitIdle) {
  qfs::Rng rng(33);
  Circuit c = quantum_volume(5, 1, rng);
  EXPECT_EQ(c.two_qubit_gate_count(), 4);  // 2 pairs
}

TEST(MaxCut, CutValueCountsCrossingEdges) {
  graph::Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 3.0);
  // Assignment 0b0101: vertices 0,2 on side 1; edges (0,1),(1,2),(2,3) all
  // crossing -> cut = 6.
  EXPECT_DOUBLE_EQ(maxcut_value(g, 0b0101), 6.0);
  // All same side: cut 0.
  EXPECT_DOUBLE_EQ(maxcut_value(g, 0b0000), 0.0);
  EXPECT_DOUBLE_EQ(maxcut_value(g, 0b1111), 0.0);
  // Only vertex 3 flipped: edge (2,3) crosses -> 3.
  EXPECT_DOUBLE_EQ(maxcut_value(g, 0b1000), 3.0);
}

TEST(MaxCut, OptimumKnownGraphs) {
  // Even ring: all edges can cross (alternate sides).
  EXPECT_DOUBLE_EQ(maxcut_optimum(graph::cycle_graph(6)), 6.0);
  // Odd ring: one edge must stay inside.
  EXPECT_DOUBLE_EQ(maxcut_optimum(graph::cycle_graph(5)), 4.0);
  // Complete graph K4: best split 2/2 cuts 4 of 6 edges.
  EXPECT_DOUBLE_EQ(maxcut_optimum(graph::complete_graph(4)), 4.0);
  // Stars are bipartite: everything cuts.
  EXPECT_DOUBLE_EQ(maxcut_optimum(graph::star_graph(6)), 5.0);
}

TEST(MaxCut, OptimumRespectsWeights) {
  graph::Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  // Split {1} vs {0,2}: cuts 10 + 1 = 11.
  EXPECT_DOUBLE_EQ(maxcut_optimum(g), 11.0);
}

TEST(MaxCut, WidthContract) {
  EXPECT_THROW(maxcut_optimum(graph::Graph(25)), AssertionError);
}

TEST(RepetitionCode, StructureAndCounts) {
  Circuit c = repetition_code_cycle(4, 1);
  EXPECT_EQ(c.num_qubits(), 7);  // 4 data + 3 ancilla
  auto counts = c.count_by_kind();
  EXPECT_EQ(counts[GateKind::kCx], 6);
  EXPECT_EQ(counts[GateKind::kMeasure], 3);
}

TEST(RepetitionCode, MultiRoundResetsAncillas) {
  Circuit c = repetition_code_cycle(3, 3);
  auto counts = c.count_by_kind();
  EXPECT_EQ(counts[GateKind::kCx], 3 * 4);
  EXPECT_EQ(counts[GateKind::kMeasure], 3 * 2);
  EXPECT_EQ(counts[GateKind::kReset], 2 * 2);  // between rounds only
}

TEST(RepetitionCode, SyndromeDetectsInjectedBitFlip) {
  // Inject X on data qubit 1 of a 3-qubit code; both adjacent ancillas
  // must fire (parity 1), and with no error none fire.
  using sim::StabilizerState;
  for (int flipped : {-1, 0, 1, 2}) {
    Circuit prep(5);
    if (flipped >= 0) prep.x(flipped);
    // One syndrome round without the measurements (measure via tableau).
    prep.cx(0, 3).cx(1, 3).cx(1, 4).cx(2, 4);
    StabilizerState s(5);
    s.apply_circuit(prep);
    qfs::Rng rng(1);
    bool s0 = s.measure(3, rng);
    bool s1 = s.measure(4, rng);
    bool expect_s0 = flipped == 0 || flipped == 1;
    bool expect_s1 = flipped == 1 || flipped == 2;
    EXPECT_EQ(s0, expect_s0) << "flipped=" << flipped;
    EXPECT_EQ(s1, expect_s1) << "flipped=" << flipped;
  }
}

// ---------------------------------------------------------------------------
// Reversible
// ---------------------------------------------------------------------------

TEST(Reversible, OnlyClassicalReversibleKinds) {
  qfs::Rng rng(8);
  ReversibleSpec spec;
  spec.num_qubits = 6;
  spec.num_gates = 100;
  Circuit c = random_reversible(spec, rng);
  EXPECT_EQ(c.gate_count(), 100);
  for (const auto& g : c.gates()) {
    EXPECT_TRUE(g.kind == GateKind::kX || g.kind == GateKind::kCx ||
                g.kind == GateKind::kCcx);
  }
}

TEST(Reversible, MajorityChainShape) {
  Circuit c = reversible_majority_chain(6);
  EXPECT_EQ(c.gate_count(), 4 * 3);
}

TEST(Reversible, BitReversalPermutesBasis) {
  Circuit c = reversible_bit_reversal(4);
  sim::StateVector sv(4);
  // |0011> -> |1100>.
  Circuit prep(4);
  prep.x(0).x(1);
  prep.append(c);
  sv.apply_circuit(prep);
  EXPECT_NEAR(sv.probability(0b1100), 1.0, 1e-10);
}

// ---------------------------------------------------------------------------
// Suite
// ---------------------------------------------------------------------------

TEST(Suite, DefaultHas200Circuits) {
  qfs::Rng rng(9);
  auto suite = paper_suite(rng);
  EXPECT_EQ(suite.size(), 200u);
}

TEST(Suite, FamiliesAsConfigured) {
  qfs::Rng rng(10);
  SuiteOptions opts;
  opts.random_count = 5;
  opts.real_count = 7;
  opts.reversible_count = 3;
  opts.max_qubits = 20;
  opts.max_gates = 500;
  auto suite = make_suite(opts, rng);
  ASSERT_EQ(suite.size(), 15u);
  int random = 0, real = 0, rev = 0;
  for (const auto& b : suite) {
    switch (b.family) {
      case Family::kRandom: ++random; break;
      case Family::kReal: ++real; break;
      case Family::kReversible: ++rev; break;
    }
  }
  EXPECT_EQ(random, 5);
  EXPECT_EQ(real, 7);
  EXPECT_EQ(rev, 3);
}

TEST(Suite, RespectsSizeBounds) {
  qfs::Rng rng(11);
  SuiteOptions opts;
  opts.random_count = 20;
  opts.real_count = 0;
  opts.reversible_count = 10;
  opts.max_qubits = 12;
  opts.max_gates = 300;
  auto suite = make_suite(opts, rng);
  for (const auto& b : suite) {
    EXPECT_LE(b.circuit.num_qubits(), 12);
    EXPECT_LE(b.circuit.gate_count(), 300);
    EXPECT_GE(b.circuit.gate_count(), 1);
  }
}

TEST(Suite, NamesAreUnique) {
  qfs::Rng rng(12);
  SuiteOptions opts;
  opts.random_count = 10;
  opts.real_count = 10;
  opts.reversible_count = 10;
  opts.max_qubits = 10;
  opts.max_gates = 100;
  auto suite = make_suite(opts, rng);
  std::set<std::string> names;
  for (const auto& b : suite) names.insert(b.name);
  EXPECT_EQ(names.size(), suite.size());
}

TEST(Suite, DeterministicPerSeed) {
  SuiteOptions opts;
  opts.random_count = 5;
  opts.real_count = 5;
  opts.reversible_count = 5;
  opts.max_qubits = 10;
  opts.max_gates = 100;
  qfs::Rng a(13), b(13);
  auto s1 = make_suite(opts, a);
  auto s2 = make_suite(opts, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].circuit, s2[i].circuit);
  }
}

TEST(SuiteIo, WriteAndLoadRoundTrip) {
  qfs::Rng rng(15);
  SuiteOptions opts;
  opts.random_count = 3;
  opts.real_count = 3;
  opts.reversible_count = 2;
  opts.max_qubits = 8;
  opts.max_gates = 60;
  auto suite = make_suite(opts, rng);

  std::string dir = ::testing::TempDir() + "/qfs_suite_io";
  auto status = write_suite_to_directory(suite, dir);
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  auto loaded = load_suite_from_directory(dir);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& orig = suite[i];
    const auto& back = loaded.value()[i];
    EXPECT_EQ(back.name, orig.name);
    EXPECT_EQ(back.family, orig.family);
    EXPECT_EQ(back.circuit.num_qubits(), orig.circuit.num_qubits());
    // QASM round-trip preserves counts (ccz expands, so compare loosely).
    EXPECT_GE(back.circuit.gate_count(), orig.circuit.gate_count());
  }
}

TEST(SuiteIo, LoadCircuitFile) {
  std::string dir = ::testing::TempDir() + "/qfs_single";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/bell.qasm";
  {
    std::ofstream out(path);
    out << "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
  }
  auto circuit = load_circuit_file(path);
  ASSERT_TRUE(circuit.is_ok()) << circuit.status().to_string();
  EXPECT_EQ(circuit.value().name(), "bell");
  EXPECT_EQ(circuit.value().gate_count(), 2);
}

TEST(SuiteIo, MissingDirectoryFails) {
  EXPECT_FALSE(load_suite_from_directory("/nonexistent/qfs").is_ok());
  EXPECT_FALSE(load_circuit_file("/nonexistent/x.qasm").is_ok());
}

TEST(Suite, FamilyNames) {
  EXPECT_STREQ(family_name(Family::kRandom), "random");
  EXPECT_STREQ(family_name(Family::kReal), "real");
  EXPECT_STREQ(family_name(Family::kReversible), "reversible");
}

}  // namespace
}  // namespace qfs::workloads
