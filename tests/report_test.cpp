#include <gtest/gtest.h>

#include "report/histogram.h"
#include "report/scatter.h"
#include "report/table.h"
#include "support/assert.h"
#include "support/strings.h"

namespace qfs::report {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "2"});
  std::string s = t.to_string();
  // Both value fields must start at the same column.
  auto lines = qfs::split(s, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(TextTable, RowWidthMismatchIsContractViolation) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only"}), qfs::AssertionError);
}

TEST(TextTable, EmptyHeaderIsContractViolation) {
  EXPECT_THROW(TextTable({}), qfs::AssertionError);
}

TEST(Scatter, PlacesExtremePoints) {
  ScatterSeries s;
  s.label = "demo";
  s.marker = 'o';
  s.xs = {0.0, 10.0};
  s.ys = {0.0, 5.0};
  ScatterOptions opts;
  opts.width = 40;
  opts.height = 10;
  std::string out = render_scatter({s}, opts);
  // Two markers must appear in the plot area (lines containing the axis
  // bar; the legend line also contains the marker char and is excluded).
  int count = 0;
  for (const std::string& line : qfs::split(out, '\n')) {
    if (line.find('|') == std::string::npos) continue;
    for (char c : line) {
      if (c == 'o') ++count;
    }
  }
  EXPECT_EQ(count, 2);
  // Legend mentions the label.
  EXPECT_NE(out.find("demo"), std::string::npos);
}

TEST(Scatter, MultipleSeriesDifferentMarkers) {
  ScatterSeries a{"real", 'o', {1, 2}, {1, 2}};
  ScatterSeries b{"random", 's', {3, 4}, {3, 4}};
  std::string out = render_scatter({a, b}, {});
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('s'), std::string::npos);
}

TEST(Scatter, EmptyDataSafe) {
  std::string out = render_scatter({}, {});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(Scatter, LogScaleSkipsNonPositive) {
  ScatterSeries s{"f", '*', {1, 2, 3}, {0.0, 0.1, 1.0}};
  ScatterOptions opts;
  opts.log_y = true;
  std::string out = render_scatter({s}, opts);
  int count = 0;
  for (const std::string& line : qfs::split(out, '\n')) {
    if (line.find('|') == std::string::npos) continue;
    for (char c : line) {
      if (c == '*') ++count;
    }
  }
  EXPECT_EQ(count, 2);  // the y=0 point is dropped
}

TEST(Scatter, TitleAndAxisLabelsRendered) {
  ScatterSeries s{"f", '*', {1}, {1}};
  ScatterOptions opts;
  opts.title = "Figure 3a";
  opts.x_label = "gates";
  opts.y_label = "fidelity";
  std::string out = render_scatter({s}, opts);
  EXPECT_NE(out.find("Figure 3a"), std::string::npos);
  EXPECT_NE(out.find("gates"), std::string::npos);
  EXPECT_NE(out.find("fidelity"), std::string::npos);
}

TEST(Scatter, TooSmallPlotIsContractViolation) {
  ScatterOptions opts;
  opts.width = 2;
  EXPECT_THROW(render_scatter({}, opts), qfs::AssertionError);
}

TEST(Scatter, ConstantSeriesHandled) {
  ScatterSeries s{"const", '*', {1, 2, 3}, {5, 5, 5}};
  EXPECT_NO_THROW(render_scatter({s}, {}));
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(Histogram, CountsPartitionValues) {
  HistogramOptions opts;
  opts.bins = 2;
  opts.lower = 0.0;
  opts.upper = 10.0;
  std::string out = render_histogram({1, 2, 3, 8, 9}, opts);
  EXPECT_NE(out.find("[0.0, 5.0) "), std::string::npos);
  EXPECT_NE(out.find(" 3\n"), std::string::npos);
  EXPECT_NE(out.find(" 2\n"), std::string::npos);
}

TEST(Histogram, AutoRangeFromData) {
  HistogramOptions opts;
  opts.bins = 4;
  std::string out = render_histogram({0, 1, 2, 3, 4}, opts);
  EXPECT_NE(out.find("[0.0, 1.0)"), std::string::npos);
  EXPECT_NE(out.find("[3.0, 4.0]"), std::string::npos);
}

TEST(Histogram, OutOfRangeValuesClampToEdgeBins) {
  HistogramOptions opts;
  opts.bins = 2;
  opts.lower = 0.0;
  opts.upper = 2.0;
  std::string out = render_histogram({-100, 100}, opts);
  // Both land somewhere: counts 1 and 1.
  int ones = 0;
  for (const std::string& line : qfs::split(out, '\n')) {
    if (line.size() >= 2 && line.substr(line.size() - 2) == " 1") ++ones;
  }
  EXPECT_EQ(ones, 2);
}

TEST(Histogram, EmptyAndDegenerateData) {
  EXPECT_NE(render_histogram({}, {}).find("(no data)"), std::string::npos);
  EXPECT_NO_THROW(render_histogram({7, 7, 7}, {}));
}

TEST(Histogram, NonEmptyBinsAlwaysVisible) {
  HistogramOptions opts;
  opts.bins = 2;
  opts.max_bar_width = 5;
  opts.lower = 0.0;
  opts.upper = 2.0;
  // 1000 in bin 0, 1 in bin 1: the single count still draws one block.
  std::vector<double> values(1000, 0.5);
  values.push_back(1.5);
  std::string out = render_histogram(values, opts);
  EXPECT_NE(out.find("█ 1"), std::string::npos);
}

TEST(Histogram, Validation) {
  HistogramOptions opts;
  opts.bins = 0;
  EXPECT_THROW(render_histogram({1.0}, opts), qfs::AssertionError);
}

}  // namespace
}  // namespace qfs::report
