// QASM round-trip property: printing is a *fixed point* of print -> parse ->
// print for every circuit in the benchmark suite. The compile cache keys
// artifacts by the canonical QASM text (cache/fingerprint.h), so a circuit
// and its reparse must render identically or warm-cache runs would miss —
// or worse, alias — entries.
#include <string>

#include "gtest/gtest.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "support/rng.h"
#include "workloads/suite.h"

namespace qfs {
namespace {

// print(parse(print(c))) == print(c) for one circuit; returns the canonical
// text for reuse.
std::string expect_fixed_point(const circuit::Circuit& circuit,
                               const std::string& label) {
  std::string once = qasm::to_qasm(circuit);
  auto reparsed = qasm::parse(once);
  EXPECT_TRUE(reparsed.is_ok())
      << label << ": " << reparsed.status().to_string();
  if (!reparsed.is_ok()) return once;
  std::string twice = qasm::to_qasm(reparsed.value());
  EXPECT_EQ(once, twice) << label << ": QASM printing is not a fixed point";
  return once;
}

TEST(QasmRoundTripTest, PaperSuiteIsAFixedPoint) {
  Rng rng(2022);
  auto suite = workloads::paper_suite(rng);
  ASSERT_EQ(suite.size(), 200u);
  for (const auto& b : suite) {
    expect_fixed_point(b.circuit, b.name);
  }
}

TEST(QasmRoundTripTest, CircuitNameSurvivesRoundTrip) {
  Rng rng(7);
  workloads::SuiteOptions opts;
  opts.random_count = 3;
  opts.real_count = 3;
  opts.reversible_count = 2;
  opts.max_gates = 200;
  for (const auto& b : workloads::make_suite(opts, rng)) {
    auto reparsed = qasm::parse(qasm::to_qasm(b.circuit));
    ASSERT_TRUE(reparsed.is_ok()) << b.name;
    EXPECT_EQ(reparsed.value().name(), b.circuit.name()) << b.name;
  }
}

TEST(QasmRoundTripTest, SecondSeedAlsoFixedPoint) {
  // A different seed exercises different gate/angle draws; the property is
  // seed-independent.
  Rng rng(99);
  workloads::SuiteOptions opts;
  opts.random_count = 10;
  opts.real_count = 10;
  opts.reversible_count = 5;
  opts.max_gates = 500;
  for (const auto& b : workloads::make_suite(opts, rng)) {
    expect_fixed_point(b.circuit, b.name);
  }
}

}  // namespace
}  // namespace qfs
