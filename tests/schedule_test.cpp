#include <gtest/gtest.h>

#include <cmath>

#include "compiler/schedule.h"
#include "device/device.h"
#include "support/rng.h"
#include "workloads/random_circuit.h"

namespace qfs::compiler {
namespace {

using circuit::Circuit;
using device::Device;

Device ungrouped_line(int n) {
  // line device has no control groups configured.
  return device::line_device(n);
}

TEST(Schedule, EmptyCircuit) {
  Device d = ungrouped_line(3);
  Schedule s = asap_schedule(Circuit(3), d);
  EXPECT_EQ(s.makespan_cycles, 0);
  EXPECT_TRUE(s.gates.empty());
}

TEST(Schedule, ParallelSingleQubitGatesShareCycle) {
  Device d = ungrouped_line(3);
  Circuit c(3);
  c.rx(0.1, 0).rx(0.2, 1).rx(0.3, 2);
  Schedule s = asap_schedule(c, d);
  for (const auto& sg : s.gates) EXPECT_EQ(sg.start_cycle, 0);
  EXPECT_EQ(s.makespan_cycles, 1);  // 20ns gate / 20ns cycle
}

TEST(Schedule, SharedQubitSerialises) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.rx(0.1, 0).rz(0.2, 0);
  Schedule s = asap_schedule(c, d);
  EXPECT_EQ(s.gates[0].start_cycle, 0);
  EXPECT_EQ(s.gates[1].start_cycle, 1);
}

TEST(Schedule, TwoQubitGateDuration) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.cz(0, 1).rx(0.1, 0);
  Schedule s = asap_schedule(c, d);
  EXPECT_EQ(s.gates[0].duration_cycles, 2);  // 40ns / 20ns
  EXPECT_EQ(s.gates[1].start_cycle, 2);
  EXPECT_DOUBLE_EQ(s.makespan_ns(), 60.0);
}

TEST(Schedule, MeasurementIsLong) {
  Device d = ungrouped_line(1);
  Circuit c(1);
  c.measure(0);
  Schedule s = asap_schedule(c, d);
  EXPECT_EQ(s.gates[0].duration_cycles, 30);  // 600ns / 20ns
}

TEST(Schedule, BarrierOrdersWithoutCycleCost) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.rx(0.1, 0);
  c.barrier({0, 1});
  c.rx(0.2, 1);
  Schedule s = asap_schedule(c, d);
  EXPECT_EQ(s.gates[1].duration_cycles, 0);
  EXPECT_EQ(s.gates[2].start_cycle, 1);  // pushed after rx(0) via barrier
  EXPECT_EQ(s.makespan_cycles, 2);
}

TEST(Schedule, AsapIsValid) {
  qfs::Rng rng(3);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 6;
  spec.num_gates = 120;
  spec.two_qubit_fraction = 0.4;
  Circuit c = workloads::random_circuit(spec, rng);
  Device d = ungrouped_line(6);
  Schedule s = asap_schedule(c, d);
  EXPECT_TRUE(schedule_is_valid(c, d, s));
}

TEST(Schedule, AlapIsValidAndSameMakespan) {
  qfs::Rng rng(5);
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 5;
  spec.num_gates = 80;
  spec.two_qubit_fraction = 0.3;
  Circuit c = workloads::random_circuit(spec, rng);
  Device d = ungrouped_line(5);
  Schedule asap = asap_schedule(c, d);
  Schedule alap = alap_schedule(c, d);
  EXPECT_TRUE(schedule_is_valid(c, d, alap));
  EXPECT_EQ(asap.makespan_cycles, alap.makespan_cycles);
  // ALAP never starts a gate earlier than ASAP.
  for (std::size_t i = 0; i < asap.gates.size(); ++i) {
    EXPECT_GE(alap.gates[i].start_cycle, asap.gates[i].start_cycle);
  }
}

TEST(Schedule, ControlGroupsForbidMixedKindsInOneCycle) {
  Device d = device::surface17_device();
  // Qubits 0 and 1 share control group 0; rx and ry must not overlap.
  Circuit c(17);
  c.rx(0.1, 0).ry(0.2, 1);
  Schedule s = asap_schedule(c, d);
  EXPECT_TRUE(schedule_is_valid(c, d, s));
  EXPECT_NE(s.gates[0].start_cycle, s.gates[1].start_cycle);
}

TEST(Schedule, ControlGroupsAllowSameKindBroadcast) {
  Device d = device::surface17_device();
  Circuit c(17);
  c.x(0).x(1);  // same kind, same group: may share the cycle
  Schedule s = asap_schedule(c, d);
  EXPECT_EQ(s.gates[0].start_cycle, s.gates[1].start_cycle);
}

TEST(Schedule, ControlGroupsDifferentGroupsUnconstrained) {
  Device d = device::surface17_device();
  Circuit c(17);
  c.rx(0.1, 0).ry(0.2, 2);  // rows 0 and 1: groups 0 and 1
  Schedule s = asap_schedule(c, d);
  EXPECT_EQ(s.gates[0].start_cycle, s.gates[1].start_cycle);
}

TEST(Schedule, ControlGroupsCanBeDisabled) {
  Device d = device::surface17_device();
  Circuit c(17);
  c.rx(0.1, 0).ry(0.2, 1);
  ScheduleOptions opts;
  opts.respect_control_groups = false;
  Schedule s = asap_schedule(c, d, opts);
  EXPECT_EQ(s.gates[0].start_cycle, s.gates[1].start_cycle);
}

TEST(Schedule, GroupedRandomCircuitsAreValid) {
  qfs::Rng rng(7);
  Device d = device::surface17_device();
  for (int trial = 0; trial < 5; ++trial) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 17;
    spec.num_gates = 100;
    spec.two_qubit_fraction = 0.35;
    Circuit c = workloads::random_circuit(spec, rng);
    Schedule s = asap_schedule(c, d);
    EXPECT_TRUE(schedule_is_valid(c, d, s)) << "trial " << trial;
    Schedule alap = alap_schedule(c, d);
    EXPECT_TRUE(schedule_is_valid(c, d, alap)) << "trial " << trial;
  }
}

TEST(Schedule, ValidatorCatchesOverlap) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.rx(0.1, 0).rz(0.2, 0);
  Schedule s = asap_schedule(c, d);
  s.gates[1].start_cycle = 0;  // force overlap on qubit 0
  EXPECT_FALSE(schedule_is_valid(c, d, s));
}

TEST(Schedule, ValidatorCatchesWrongDuration) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.cz(0, 1);
  Schedule s = asap_schedule(c, d);
  s.gates[0].duration_cycles = 1;
  EXPECT_FALSE(schedule_is_valid(c, d, s));
}

TEST(Schedule, ValidatorCatchesMakespanViolation) {
  Device d = ungrouped_line(1);
  Circuit c(1);
  c.x(0);
  Schedule s = asap_schedule(c, d);
  s.makespan_cycles = 0;
  EXPECT_FALSE(schedule_is_valid(c, d, s));
}

TEST(Schedule, CustomCycleTime) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.cz(0, 1);
  ScheduleOptions opts;
  opts.cycle_time_ns = 10.0;
  Schedule s = asap_schedule(c, d, opts);
  EXPECT_EQ(s.gates[0].duration_cycles, 4);  // 40ns / 10ns
  EXPECT_DOUBLE_EQ(s.makespan_ns(), 40.0);
}

TEST(Crosstalk, AdjacentTwoQubitGatesSerialised) {
  // Line 0-1-2-3: cz(0,1) and cz(2,3) share the coupled pair (1,2), so the
  // crosstalk-aware schedule must not overlap them.
  Device d = ungrouped_line(4);
  Circuit c(4);
  c.cz(0, 1).cz(2, 3);
  Schedule plain = asap_schedule(c, d);
  EXPECT_EQ(plain.gates[0].start_cycle, plain.gates[1].start_cycle);
  EXPECT_EQ(count_crosstalk_pairs(c, d, plain), 1);

  ScheduleOptions opts;
  opts.avoid_crosstalk = true;
  Schedule safe = asap_schedule(c, d, opts);
  EXPECT_TRUE(schedule_is_valid(c, d, safe, opts));
  EXPECT_EQ(count_crosstalk_pairs(c, d, safe), 0);
  EXPECT_GT(safe.makespan_cycles, plain.makespan_cycles);
}

TEST(Crosstalk, DistantGatesStayParallel) {
  Device d = ungrouped_line(8);
  Circuit c(8);
  c.cz(0, 1).cz(5, 6);  // far apart: no spectator coupling
  ScheduleOptions opts;
  opts.avoid_crosstalk = true;
  Schedule s = asap_schedule(c, d, opts);
  EXPECT_EQ(s.gates[0].start_cycle, s.gates[1].start_cycle);
  EXPECT_EQ(count_crosstalk_pairs(c, d, s), 0);
}

TEST(Crosstalk, SingleQubitGatesUnconstrained) {
  Device d = ungrouped_line(3);
  Circuit c(3);
  c.rx(0.1, 0).rx(0.2, 1).rx(0.3, 2);
  ScheduleOptions opts;
  opts.avoid_crosstalk = true;
  Schedule s = asap_schedule(c, d, opts);
  EXPECT_EQ(s.makespan_cycles, 1);
}

TEST(Crosstalk, RandomCircuitsScheduleCleanly) {
  qfs::Rng rng(11);
  Device d = device::surface17_device();
  workloads::RandomCircuitSpec spec;
  spec.num_qubits = 17;
  spec.num_gates = 80;
  spec.two_qubit_fraction = 0.5;
  Circuit c = workloads::random_circuit(spec, rng);
  ScheduleOptions opts;
  opts.avoid_crosstalk = true;
  Schedule s = asap_schedule(c, d, opts);
  EXPECT_TRUE(schedule_is_valid(c, d, s, opts));
  EXPECT_EQ(count_crosstalk_pairs(c, d, s), 0);
}

TEST(Crosstalk, ScheduledFidelityPenalisesConflicts) {
  Device d = ungrouped_line(4);
  Circuit c(4);
  c.cz(0, 1).cz(2, 3);
  Schedule plain = asap_schedule(c, d);
  ScheduleOptions opts;
  opts.avoid_crosstalk = true;
  Schedule safe = asap_schedule(c, d, opts);
  double factor = 0.98;
  double f_plain = estimate_scheduled_log_fidelity(c, d, plain, factor);
  double f_safe = estimate_scheduled_log_fidelity(c, d, safe, factor);
  EXPECT_LT(f_plain, f_safe);
  EXPECT_NEAR(f_safe - f_plain, -std::log(factor), 1e-12);
}

TEST(Crosstalk, FactorValidation) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.cz(0, 1);
  Schedule s = asap_schedule(c, d);
  EXPECT_THROW(estimate_scheduled_log_fidelity(c, d, s, 0.0), AssertionError);
  EXPECT_THROW(estimate_scheduled_log_fidelity(c, d, s, 1.5), AssertionError);
}

TEST(Decoherence, IdleQubitsDecay) {
  Device d = ungrouped_line(3);
  // Qubit 0 runs a long measurement while qubit 1 idles next to it.
  Circuit c(3);
  c.measure(0).rx(0.1, 1);
  Schedule s = asap_schedule(c, d);
  double with = estimate_log_fidelity_with_decoherence(c, d, s);
  // Gate-only fidelity (no decoherence).
  double gate_only = std::log(d.error_model().measurement_fidelity()) +
                     std::log(d.error_model().single_qubit_fidelity());
  EXPECT_LT(with, gate_only);
}

TEST(Decoherence, UnusedQubitsExempt) {
  Device d = ungrouped_line(5);
  Circuit c(5);
  c.rx(0.1, 0);
  Schedule s = asap_schedule(c, d);
  // Only qubit 0 is used and it is busy the whole makespan: no decay.
  double f = estimate_log_fidelity_with_decoherence(c, d, s);
  EXPECT_NEAR(f, std::log(d.error_model().single_qubit_fidelity()), 1e-12);
}

TEST(Decoherence, ShorterScheduleHigherFidelity) {
  // Serial execution (forced by artificial dependencies) vs parallel: the
  // parallel schedule leaves less idle time, hence less decay.
  Device d = ungrouped_line(4);
  Circuit parallel(4);
  parallel.rx(0.1, 0).rx(0.1, 1).rx(0.1, 2).rx(0.1, 3);
  Circuit serial(4);
  serial.rx(0.1, 0);
  serial.barrier({0, 1, 2, 3});
  serial.rx(0.1, 1);
  serial.barrier({0, 1, 2, 3});
  serial.rx(0.1, 2);
  serial.barrier({0, 1, 2, 3});
  serial.rx(0.1, 3);
  Schedule sp = asap_schedule(parallel, d);
  Schedule ss = asap_schedule(serial, d);
  EXPECT_LT(sp.makespan_cycles, ss.makespan_cycles);
  EXPECT_GT(estimate_log_fidelity_with_decoherence(parallel, d, sp),
            estimate_log_fidelity_with_decoherence(serial, d, ss));
}

TEST(Decoherence, CoherenceTimesConfigurable) {
  Device d = ungrouped_line(2);
  Circuit c(2);
  c.measure(0).rx(0.1, 1);
  Schedule s = asap_schedule(c, d);
  double base = estimate_log_fidelity_with_decoherence(c, d, s);
  d.mutable_error_model().set_coherence_times_ns(30000.0, 2000.0);  // worse T2
  double worse = estimate_log_fidelity_with_decoherence(c, d, s);
  EXPECT_LT(worse, base);
  EXPECT_THROW(d.mutable_error_model().set_coherence_times_ns(-1, 10),
               AssertionError);
}

TEST(Schedule, DeeperCircuitLongerMakespan) {
  Device d = ungrouped_line(2);
  Circuit shallow(2), deep(2);
  shallow.rx(0.1, 0).rx(0.1, 1);
  deep.rx(0.1, 0).rz(0.1, 0).rx(0.1, 0);
  EXPECT_LT(asap_schedule(shallow, d).makespan_cycles,
            asap_schedule(deep, d).makespan_cycles);
}

}  // namespace
}  // namespace qfs::compiler
