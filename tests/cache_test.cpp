// The two-tier compilation cache, end to end: fingerprint sensitivity,
// artifact round-trips, cold/warm suite runs with byte-identical output,
// exact counters under a parallel fan-out, LRU eviction, and the
// corruption contract (a damaged entry is a recorded miss, never a crash).
#include "cache/cache.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "backends/registry.h"
#include "cache/artifact.h"
#include "cache/fingerprint.h"
#include "cache/memo.h"
#include "common.h"
#include "device/device.h"
#include "gtest/gtest.h"
#include "mapper/pipeline.h"
#include "qasm/writer.h"
#include "support/rng.h"

namespace qfs::cache {
namespace {

namespace fs = std::filesystem;

// A fresh, empty directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  fs::path dir = fs::path(testing::TempDir()) / ("qfs_cache_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

Fingerprint test_key(std::string_view tag) {
  return qfs::hash128(tag);
}

// The small suite the cold/warm tests compile: 40 distinct circuits (so
// every fingerprint is unique and hit/miss counts are exact even when the
// compiles race).
bench::SuiteRunConfig small_suite_config(CompileCache* cache, int jobs = 1) {
  bench::SuiteRunConfig config;
  config.jobs = jobs;
  config.cache = cache;
  config.suite.random_count = 20;
  config.suite.real_count = 15;
  config.suite.reversible_count = 5;
  config.suite.max_qubits = 17;
  config.suite.max_gates = 300;
  return config;
}

TEST(FingerprintTest, StableAndSensitive) {
  device::Device dev = device::surface17_device();
  mapper::MappingOptions options;
  const std::string qasm_text = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n";

  Fingerprint base = compile_fingerprint(qasm_text, dev, options, 2022);
  EXPECT_EQ(base, compile_fingerprint(qasm_text, dev, options, 2022));

  // Every key ingredient perturbs the digest.
  EXPECT_NE(base, compile_fingerprint(qasm_text + " ", dev, options, 2022));
  EXPECT_NE(base, compile_fingerprint(qasm_text, device::surface7_device(),
                                      options, 2022));
  mapper::MappingOptions other = options;
  other.placer = "annealing";
  EXPECT_NE(base, compile_fingerprint(qasm_text, dev, other, 2022));
  EXPECT_NE(base, compile_fingerprint(qasm_text, dev, options, 2023));
  EXPECT_NE(base,
            compile_fingerprint(qasm_text, dev, options, 2022, "other-salt"));

  // Calibration overrides change the effective error model, hence the key.
  device::Device recalibrated = dev;
  recalibrated.mutable_error_model().set_qubit_fidelity(0, 0.9);
  EXPECT_NE(base, compile_fingerprint(qasm_text, recalibrated, options, 2022));
  // Overriding an edge absent from the coupling graph is a no-op for
  // compilation, so it must be a no-op for the key too.
  device::Device unchanged = dev;
  unchanged.mutable_error_model().set_edge_fidelity(0, 1, 0.5);
  EXPECT_EQ(base, compile_fingerprint(qasm_text, unchanged, options, 2022));
}

TEST(FingerprintTest, BackendSpecDistinguishesIdenticalHardware) {
  // Two devices that agree on every hashed hardware dimension (topology,
  // gate set, calibration, control groups) but carry different registry
  // specs must key differently — the canonical spec line is what makes
  // cross-backend collisions impossible by construction.
  auto made = backends::make_device("grid(rows=4,cols=5)");
  ASSERT_TRUE(made.is_ok());
  const device::Device& a = made.value();
  device::Device b = a;
  b.set_spec("neutral_atom(rows=4,cols=5,radius=1)");
  mapper::MappingOptions options;
  const std::string qasm_text = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n";
  EXPECT_NE(compile_fingerprint(qasm_text, a, options, 2022),
            compile_fingerprint(qasm_text, b, options, 2022));
}

TEST(FingerprintTest, ZooBackendsNeverCollide) {
  // Same circuit, options and seed on every zoo backend: pairwise-distinct
  // cache keys (different devices can never serve each other's artifacts).
  const char* specs[] = {
      "surface17",
      "heavyhex27",
      "heavy_hex(rows=3,cols=9)",
      "sycamore(rows=5,cols=4)",
      "trapped_ion(ions=20)",
      "neutral_atom(rows=4,cols=5,radius=1.5)",
      "neutral_atom(rows=4,cols=5,radius=2)",
      "grid(rows=4,cols=5)",
      "full(n=20)",
  };
  mapper::MappingOptions options;
  const std::string qasm_text = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n";
  std::vector<Fingerprint> keys;
  for (const char* spec : specs) {
    auto dev = backends::make_device(spec);
    ASSERT_TRUE(dev.is_ok()) << spec;
    keys.push_back(compile_fingerprint(qasm_text, dev.value(), options, 2022));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << specs[i] << " vs " << specs[j];
    }
  }
}

TEST(FingerprintTest, FieldsAreLengthPrefixed) {
  // ("ab","c") must not collide with ("a","bc") by concatenation.
  FingerprintBuilder a, b;
  a.field("t", "ab").field("t", "c");
  b.field("t", "a").field("t", "bc");
  EXPECT_NE(a.finish(), b.finish());
}

TEST(AttemptFingerprintTest, DistinctPerAttemptAndBase) {
  Fingerprint base1 = test_key("base1");
  Fingerprint base2 = test_key("base2");
  EXPECT_EQ(attempt_fingerprint(base1, "trivial|trivial|2022"),
            attempt_fingerprint(base1, "trivial|trivial|2022"));
  EXPECT_NE(attempt_fingerprint(base1, "trivial|trivial|2022"),
            attempt_fingerprint(base1, "trivial|lookahead|2022"));
  EXPECT_NE(attempt_fingerprint(base1, "trivial|trivial|2022"),
            attempt_fingerprint(base2, "trivial|trivial|2022"));
}

TEST(ArtifactTest, MappingResultRoundTripsExactly) {
  device::Device dev = device::surface17_device();
  Rng rng(2022);
  workloads::SuiteOptions suite_opts;
  suite_opts.random_count = 2;
  suite_opts.real_count = 2;
  suite_opts.reversible_count = 1;
  suite_opts.max_qubits = 17;
  suite_opts.max_gates = 120;
  auto suite = workloads::make_suite(suite_opts, rng);
  mapper::MappingOptions options;
  options.compute_latency = true;
  for (const auto& b : suite) {
    Rng map_rng(7);
    mapper::MappingResult result =
        mapper::map_circuit(b.circuit, dev, options, map_rng);
    std::string payload = serialize_mapping_result(result);
    auto decoded = deserialize_mapping_result(payload);
    ASSERT_TRUE(decoded.is_ok()) << b.name << ": "
                                 << decoded.status().to_string();
    // Exact fixed point: re-serializing reproduces the payload byte for
    // byte, which is what makes warm suite runs byte-identical.
    EXPECT_EQ(serialize_mapping_result(decoded.value()), payload) << b.name;
    EXPECT_EQ(qasm::to_qasm(decoded.value().mapped),
              qasm::to_qasm(result.mapped))
        << b.name;
  }
}

TEST(ArtifactTest, MalformedPayloadsAreErrorsNotCrashes) {
  const char* bad[] = {
      "",
      "not-an-artifact",
      "qfs-artifact 999\n",
      "qfs-artifact 1\nqubits notanumber\n",
      "qfs-artifact 1\nqubits 3\nname x\ngates 1\ng cx 0 99 ;\n",
      "qfs-artifact 1\nqubits 2\nname x\ngates 1\ng nosuchgate 0 1 ;\n",
  };
  for (const char* payload : bad) {
    auto decoded = deserialize_mapping_result(payload);
    EXPECT_FALSE(decoded.is_ok()) << "payload: " << payload;
  }
}

TEST(CompileCacheTest, MemoryOnlyStoreAndLookup) {
  CompileCache cache(CacheConfig{});  // no disk tier
  Fingerprint key = test_key("k");
  EXPECT_EQ(cache.entry_path(key), "");
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.store(key, "payload-bytes");
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
  auto snap = cache.stats();
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.memory_hits, 1u);
  EXPECT_EQ(snap.stores, 1u);
}

TEST(CompileCacheTest, DiskTierSurvivesProcessRestart) {
  std::string dir = fresh_dir("restart");
  Fingerprint key = test_key("persisted");
  {
    CompileCache cache(CacheConfig{dir});
    cache.store(key, "persisted-payload");
    EXPECT_TRUE(fs::exists(cache.entry_path(key)));
  }
  // A new instance on the same directory models a new process: the memory
  // tier is cold, the disk tier hits.
  CompileCache cache(CacheConfig{dir});
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "persisted-payload");
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  // The disk hit was promoted: the next lookup is a memory hit.
  EXPECT_TRUE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().memory_hits, 1u);
}

TEST(CompileCacheTest, LruEvictsUnderByteBudget) {
  CacheConfig config;
  config.memory_budget_bytes = 4096;
  config.shards = 1;  // one shard makes the LRU order fully observable
  CompileCache cache(config);
  const std::string payload(1024, 'p');
  for (int i = 0; i < 8; ++i) {
    cache.store(test_key("evict" + std::to_string(i)), payload);
  }
  auto snap = cache.stats();
  EXPECT_GE(snap.evictions, 4u);
  // The oldest entries are gone (memory-only cache: eviction means miss)...
  EXPECT_FALSE(cache.lookup(test_key("evict0")).has_value());
  // ...while the most recent survive.
  EXPECT_TRUE(cache.lookup(test_key("evict7")).has_value());
}

TEST(CompileCacheTest, EvictedEntriesStillHitDisk) {
  std::string dir = fresh_dir("evict_disk");
  CacheConfig config;
  config.disk_dir = dir;
  config.memory_budget_bytes = 2048;
  config.shards = 1;
  CompileCache cache(config);
  const std::string payload(1024, 'q');
  for (int i = 0; i < 6; ++i) {
    cache.store(test_key("spill" + std::to_string(i)), payload);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  auto hit = cache.lookup(test_key("spill0"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

TEST(CompileCacheTest, TruncatedEntryIsARecordedMissAndRecoverable) {
  std::string dir = fresh_dir("truncated");
  CacheConfig config;
  config.disk_dir = dir;
  config.memory_budget_bytes = 0;  // disk-only: no memory tier to mask it
  CompileCache cache(config);
  Fingerprint key = test_key("truncme");
  cache.store(key, "some payload worth caching");
  std::string path = cache.entry_path(key);
  ASSERT_TRUE(fs::exists(path));

  fs::resize_file(path, 10);  // chop mid-header
  EXPECT_FALSE(cache.lookup(key).has_value());
  auto snap = cache.stats();
  EXPECT_EQ(snap.corrupt_entries, 1u);
  EXPECT_EQ(snap.misses, 1u);

  // The contract is self-healing: re-storing overwrites the damaged entry.
  cache.store(key, "some payload worth caching");
  auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "some payload worth caching");
}

TEST(CompileCacheTest, GarbageAndMismatchedEntriesAreMisses) {
  std::string dir = fresh_dir("garbage");
  CacheConfig config;
  config.disk_dir = dir;
  config.memory_budget_bytes = 0;
  CompileCache cache(config);

  // Flipped payload byte: digest check fails.
  Fingerprint key = test_key("flipped");
  cache.store(key, "payload-abcdefgh");
  {
    std::fstream f(cache.entry_path(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  EXPECT_FALSE(cache.lookup(key).has_value());

  // An entry file copied under the wrong key: embedded-key check fails.
  Fingerprint other = test_key("other");
  cache.store(other, "other-payload");
  fs::create_directories(fs::path(cache.entry_path(key)).parent_path());
  fs::copy_file(cache.entry_path(other), cache.entry_path(key),
                fs::copy_options::overwrite_existing);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_GE(cache.stats().corrupt_entries, 2u);
}

TEST(CacheSuiteTest, ColdThenWarmIsByteIdenticalWithExactCounters) {
  std::string dir = fresh_dir("suite");
  device::Device dev = device::surface17_device();
  const std::uint64_t kCircuits = 40;

  // Cold: every compile misses, then stores.
  CompileCache cold(CacheConfig{dir});
  auto cold_config = small_suite_config(&cold);
  std::string cold_csv = bench::suite_rows_to_csv(bench::run_suite(dev, cold_config));
  auto cold_snap = cold.stats();
  EXPECT_EQ(cold_snap.misses, kCircuits);
  EXPECT_EQ(cold_snap.stores, kCircuits);
  EXPECT_EQ(cold_snap.hits(), 0u);

  // Warm, new instance on the same directory: every compile disk-hits.
  CompileCache warm(CacheConfig{dir});
  auto warm_config = small_suite_config(&warm);
  std::string warm_csv = bench::suite_rows_to_csv(bench::run_suite(dev, warm_config));
  auto warm_snap = warm.stats();
  EXPECT_EQ(warm_snap.disk_hits, kCircuits);
  EXPECT_EQ(warm_snap.misses, 0u);
  EXPECT_EQ(cold_csv, warm_csv);

  // Warm again on the *same* instance: the memory tier answers.
  std::string memory_csv =
      bench::suite_rows_to_csv(bench::run_suite(dev, warm_config));
  EXPECT_EQ(warm.stats().memory_hits, kCircuits);
  EXPECT_EQ(cold_csv, memory_csv);
}

TEST(CacheSuiteTest, CountersExactUnderParallelJobs) {
  // The acceptance contract: counters are exact under --jobs 8 because all
  // 40 suite circuits have distinct fingerprints (no same-key races).
  std::string dir = fresh_dir("parallel");
  device::Device dev = device::surface17_device();
  const std::uint64_t kCircuits = 40;

  CompileCache cold(CacheConfig{dir});
  auto cold_config = small_suite_config(&cold, /*jobs=*/8);
  std::string cold_csv = bench::suite_rows_to_csv(bench::run_suite(dev, cold_config));
  EXPECT_EQ(cold.stats().misses, kCircuits);
  EXPECT_EQ(cold.stats().stores, kCircuits);

  CompileCache warm(CacheConfig{dir});
  auto warm_config = small_suite_config(&warm, /*jobs=*/8);
  std::string warm_csv = bench::suite_rows_to_csv(bench::run_suite(dev, warm_config));
  EXPECT_EQ(warm.stats().disk_hits, kCircuits);
  EXPECT_EQ(warm.stats().misses, 0u);
  EXPECT_EQ(warm.stats().corrupt_entries, 0u);
  EXPECT_EQ(cold_csv, warm_csv);
}

TEST(AttemptMemoTest, ResilientCompileReusesMemoizedAttempts) {
  device::Device dev = device::surface17_device();
  Rng rng(3);
  workloads::SuiteOptions suite_opts;
  suite_opts.random_count = 1;
  suite_opts.real_count = 1;
  suite_opts.reversible_count = 0;
  suite_opts.max_qubits = 10;
  suite_opts.max_gates = 80;
  auto suite = workloads::make_suite(suite_opts, rng);

  CompileCache cache(CacheConfig{});
  for (const auto& b : suite) {
    mapper::ResilientOptions resilient;
    resilient.base.compute_latency = true;
    Fingerprint base = compile_fingerprint(qasm::to_qasm(b.circuit), dev,
                                           resilient.base, resilient.seed);
    mapper::AttemptMemo memo = make_attempt_memo(cache, base);
    resilient.memo = &memo;

    auto first = mapper::compile_resilient(b.circuit, dev, resilient);
    ASSERT_TRUE(first.is_ok()) << b.name;
    auto again = mapper::compile_resilient(b.circuit, dev, resilient);
    ASSERT_TRUE(again.is_ok()) << b.name;
    // The memoized attempt reproduces the fresh compile exactly.
    EXPECT_EQ(qasm::to_qasm(again.value().mapping.mapped),
              qasm::to_qasm(first.value().mapping.mapped))
        << b.name;
  }
  auto snap = cache.stats();
  EXPECT_EQ(snap.stores, 2u);       // one successful attempt per circuit
  EXPECT_EQ(snap.memory_hits, 2u);  // each re-compile hits its memo
}

TEST(AttemptMemoTest, CorruptMemoEntryFallsBackToFreshCompile) {
  device::Device dev = device::surface17_device();
  Rng rng(5);
  workloads::SuiteOptions suite_opts;
  suite_opts.random_count = 1;
  suite_opts.real_count = 0;
  suite_opts.reversible_count = 0;
  suite_opts.max_qubits = 8;
  suite_opts.max_gates = 60;
  auto suite = workloads::make_suite(suite_opts, rng);
  ASSERT_EQ(suite.size(), 1u);
  const auto& b = suite[0];

  CompileCache cache(CacheConfig{});
  mapper::ResilientOptions resilient;
  resilient.base.compute_latency = true;
  Fingerprint base = compile_fingerprint(qasm::to_qasm(b.circuit), dev,
                                         resilient.base, resilient.seed);
  mapper::AttemptMemo memo = make_attempt_memo(cache, base);
  resilient.memo = &memo;

  auto first = mapper::compile_resilient(b.circuit, dev, resilient);
  ASSERT_TRUE(first.is_ok());

  // Overwrite the memoized attempt with undecodable bytes: the next compile
  // must silently fall back to a fresh mapping with the same output.
  std::string attempt_key = resilient.base.placer + "|" +
                            resilient.base.router + "|" +
                            std::to_string(resilient.seed);
  cache.store(attempt_fingerprint(base, attempt_key), "garbage");
  auto again = mapper::compile_resilient(b.circuit, dev, resilient);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(qasm::to_qasm(again.value().mapping.mapped),
            qasm::to_qasm(first.value().mapping.mapped));
  EXPECT_GE(cache.stats().corrupt_entries, 1u);
}

TEST(AttemptMemoTest, SemanticallyCorruptEntryIsARevalidatedMiss) {
  // The nastier corruption class: the payload deserializes cleanly but no
  // longer computes the source circuit. Only hit revalidation through the
  // translation validator (memo.h + analysis/equiv.h) can catch it.
  device::Device dev = device::surface17_device();
  Rng rng(5);
  workloads::SuiteOptions suite_opts;
  suite_opts.random_count = 1;
  suite_opts.real_count = 0;
  suite_opts.reversible_count = 0;
  suite_opts.max_qubits = 8;
  suite_opts.max_gates = 60;
  auto suite = workloads::make_suite(suite_opts, rng);
  ASSERT_EQ(suite.size(), 1u);
  const auto& b = suite[0];

  CompileCache cache(CacheConfig{});
  mapper::ResilientOptions resilient;
  resilient.base.compute_latency = true;
  Fingerprint base = compile_fingerprint(qasm::to_qasm(b.circuit), dev,
                                         resilient.base, resilient.seed);
  MemoValidation validation;
  validation.source = &b.circuit;
  validation.device = &dev;
  mapper::AttemptMemo memo = make_attempt_memo(cache, base, validation);
  resilient.memo = &memo;

  auto first = mapper::compile_resilient(b.circuit, dev, resilient);
  ASSERT_TRUE(first.is_ok());
  const auto baseline = cache.stats();

  // Corrupt the stored artifact semantically: drop the mapped circuit's
  // last gate. The serialization stays perfectly parseable.
  std::string attempt_key = resilient.base.placer + "|" +
                            resilient.base.router + "|" +
                            std::to_string(resilient.seed);
  Fingerprint key = attempt_fingerprint(base, attempt_key);
  auto stored = load_mapping(cache, key);
  ASSERT_TRUE(stored.has_value());
  circuit::Circuit truncated(stored->mapped.num_qubits(),
                             stored->mapped.name());
  for (std::size_t i = 0; i + 1 < stored->mapped.gates().size(); ++i) {
    truncated.add(stored->mapped.gates()[i]);
  }
  stored->mapped = truncated;
  store_mapping(cache, key, *stored);
  ASSERT_TRUE(load_mapping(cache, key).has_value())
      << "corruption must survive a plain (unvalidated) load";

  // The next compile revalidates the hit, records the corruption, and
  // degrades to a fresh compile with the original output.
  auto again = mapper::compile_resilient(b.circuit, dev, resilient);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(qasm::to_qasm(again.value().mapping.mapped),
            qasm::to_qasm(first.value().mapping.mapped));
  auto snap = cache.stats();
  EXPECT_EQ(snap.corrupt_entries, baseline.corrupt_entries + 1);
  // Two stores since the baseline: the corruption write above, then the
  // fresh compile re-storing a good artifact over it.
  EXPECT_EQ(snap.stores, baseline.stores + 2);

  // And the re-store healed the cache: one more compile is a clean hit.
  auto healed = mapper::compile_resilient(b.circuit, dev, resilient);
  ASSERT_TRUE(healed.is_ok());
  EXPECT_EQ(cache.stats().corrupt_entries, snap.corrupt_entries);
  EXPECT_GT(cache.stats().memory_hits, snap.memory_hits);
}

}  // namespace
}  // namespace qfs::cache
