// Cross-module integration tests: the full paper pipeline from workload
// generation through QASM round-trips, mapping, profiling and the
// relationships the figures depend on.
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/decompose.h"
#include "compiler/optimize.h"
#include "compiler/schedule.h"
#include "graph/generators.h"
#include "device/fidelity.h"
#include "mapper/pipeline.h"
#include "profile/circuit_profile.h"
#include "qasm/parser.h"
#include "qasm/writer.h"
#include "sim/equivalence.h"
#include "stats/correlation.h"
#include "workloads/algorithms.h"
#include "workloads/random_circuit.h"
#include "workloads/suite.h"

namespace qfs {
namespace {

using circuit::Circuit;
using device::Device;

// Fig. 2 of the paper: running a 4-qubit circuit on Surface-7 requires one
// SWAP for the non-nearest-neighbour CNOT.
TEST(Integration, Fig2Surface7ExampleNeedsOneSwap) {
  Device d = device::surface7_device();
  // The paper's example circuit: CNOTs between (q0,q1), (q1,q2), (q2,q3),
  // (q3,q0) style interactions; map virtual qubits onto Q0..Q3 ~ the
  // identity placement used in the figure. We reproduce the essential
  // property: a pair at coupling distance 2 costs exactly one SWAP.
  Circuit c(7);
  c.cz(0, 2);  // adjacent: free
  c.cz(0, 1);  // distance 2 on surface-7: one swap
  qfs::Rng rng(1);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  EXPECT_EQ(r.swaps_inserted, 1);
  qfs::Rng check(2);
  EXPECT_TRUE(sim::mapping_preserves_semantics(c, r.mapped, r.initial_layout,
                                               r.final_layout, check, 2, 1e-7));
}

// End-to-end: generate -> decompose -> map -> verify on several real
// algorithms, on the surface-17 device.
class AlgorithmEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmEndToEnd, MapAndVerify) {
  qfs::Rng rng(static_cast<std::uint64_t>(GetParam()));
  Circuit c;
  switch (GetParam()) {
    case 0: c = workloads::ghz(5); break;
    case 1: c = workloads::qft(4); break;
    case 2: c = workloads::cuccaro_adder(2); break;
    case 3: {
      graph::Graph ring = graph::cycle_graph(4);
      c = workloads::qaoa_maxcut(ring, 1, rng);
      break;
    }
    default: c = workloads::vqe_ansatz(4, 2, rng); break;
  }
  // Strip measurements so state-vector verification applies.
  Circuit unitary(c.num_qubits(), c.name());
  for (const auto& g : c.gates()) {
    if (g.kind != circuit::GateKind::kMeasure) unitary.add(g);
  }
  Device d = device::surface17_device();
  mapper::MappingResult r = mapper::map_circuit(unitary, d, rng);
  EXPECT_TRUE(d.gateset().supports_circuit(r.mapped));
  EXPECT_TRUE(mapper::respects_connectivity(r.mapped, d));
  qfs::Rng check(99);
  EXPECT_TRUE(sim::mapping_preserves_semantics(
      unitary, r.mapped, r.initial_layout, r.final_layout, check, 2, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AlgorithmEndToEnd, ::testing::Range(0, 5));

// QASM round trip composed with mapping: parse(to_qasm(mapped)) is valid
// and preserves counts.
TEST(Integration, MappedCircuitSurvivesQasmRoundTrip) {
  Device d = device::surface17_device();
  qfs::Rng rng(5);
  Circuit c = workloads::qft(5);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  auto parsed = qasm::parse(qasm::to_qasm(r.mapped));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().gate_count(), r.mapped.gate_count());
  EXPECT_EQ(parsed.value().num_qubits(), r.mapped.num_qubits());
}

// The Fig. 3(a) relation: mapped-circuit fidelity decays with gate count.
TEST(Integration, FidelityDecaysWithGateCount) {
  Device d = device::surface97_device();
  qfs::Rng rng(7);
  std::vector<double> gates, log_fid;
  for (int size : {20, 50, 100, 200, 350}) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 10;
    spec.num_gates = size;
    spec.two_qubit_fraction = 0.3;
    Circuit c = workloads::random_circuit(spec, rng);
    mapper::MappingResult r = mapper::map_circuit(c, d, rng);
    gates.push_back(r.gates_after);
    log_fid.push_back(r.log_fidelity_after);
  }
  // log fidelity strictly decreases as circuits grow.
  for (std::size_t i = 1; i < gates.size(); ++i) {
    EXPECT_LT(log_fid[i], log_fid[i - 1]);
  }
}

// The Fig. 3(b) relation: higher two-qubit share -> higher overhead, on
// average (evaluated on matched random circuits).
TEST(Integration, OverheadGrowsWithTwoQubitShare) {
  Device d = device::surface97_device();
  qfs::Rng rng(9);
  double low_share_overhead = 0.0, high_share_overhead = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 20;
    spec.num_gates = 300;
    spec.two_qubit_fraction = 0.15;
    low_share_overhead +=
        mapper::map_circuit(workloads::random_circuit(spec, rng), d, rng)
            .gate_overhead_pct;
    spec.two_qubit_fraction = 0.75;
    high_share_overhead +=
        mapper::map_circuit(workloads::random_circuit(spec, rng), d, rng)
            .gate_overhead_pct;
  }
  EXPECT_GT(high_share_overhead, low_share_overhead);
}

// The Sec. IV claim behind Fig. 5: interaction-graph metrics correlate with
// overhead. On random circuits, denser graphs (lower avg shortest path)
// produce larger overhead.
TEST(Integration, AvgShortestPathAnticorrelatesWithOverhead) {
  Device d = device::surface97_device();
  qfs::Rng rng(11);
  std::vector<double> asp, overhead;
  for (int t = 0; t < 24; ++t) {
    workloads::RandomCircuitSpec spec;
    spec.num_qubits = 6 + 4 * (t % 6);
    spec.num_gates = 250;
    spec.two_qubit_fraction = 0.1 + 0.12 * (t % 7);
    Circuit c = workloads::random_circuit(spec, rng);
    profile::CircuitProfile p = profile::profile_circuit(c);
    if (p.ig_nodes < 2) continue;
    mapper::MappingResult r = mapper::map_circuit(c, d, rng);
    asp.push_back(p.avg_shortest_path);
    overhead.push_back(r.gate_overhead_pct);
  }
  // Spearman is robust to the nonlinearity; expect a negative association.
  EXPECT_LT(stats::spearman(asp, overhead), 0.0);
}

// Suite circuits survive the full pipeline (decompose+route) with intact
// device contracts, including the biggest family members.
TEST(Integration, SuiteSubsetMapsCleanly) {
  qfs::Rng rng(13);
  workloads::SuiteOptions opts;
  opts.random_count = 4;
  opts.real_count = 7;
  opts.reversible_count = 4;
  opts.max_qubits = 30;
  opts.max_gates = 800;
  auto suite = workloads::make_suite(opts, rng);
  Device d = device::surface97_device();
  for (const auto& b : suite) {
    mapper::MappingResult r = mapper::map_circuit(b.circuit, d, rng);
    EXPECT_TRUE(mapper::respects_connectivity(r.mapped, d)) << b.name;
    EXPECT_TRUE(d.gateset().supports_circuit(r.mapped)) << b.name;
    EXPECT_GE(r.gate_overhead_pct, 0.0) << b.name;
  }
}

// Scheduling a mapped circuit respects the surface device's shared-control
// constraint end to end.
TEST(Integration, MappedCircuitSchedulesValidly) {
  Device d = device::surface17_device();
  qfs::Rng rng(15);
  Circuit c = workloads::qft(6);
  mapper::MappingResult r = mapper::map_circuit(c, d, rng);
  compiler::Schedule s = compiler::asap_schedule(r.mapped, d);
  EXPECT_TRUE(compiler::schedule_is_valid(r.mapped, d, s));
  EXPECT_GT(s.makespan_cycles, 0);
}

// Decomposed-then-optimised circuits stay equivalent and never grow.
TEST(Integration, OptimizeAfterDecomposeKeepsSemantics) {
  qfs::Rng rng(17);
  Circuit c = workloads::qft(4);
  Circuit lowered =
      compiler::decompose_to_gateset(c, device::surface_code_gateset());
  Circuit optimized = compiler::optimize(lowered);
  EXPECT_LE(optimized.gate_count(), lowered.gate_count());
  EXPECT_TRUE(sim::circuits_equivalent(c, optimized, 1e-7));
}

}  // namespace
}  // namespace qfs
